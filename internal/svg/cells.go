package svg

import (
	"fmt"
	"io"
	"math"

	"hipo/internal/cells"
	"hipo/internal/geom"
	"hipo/internal/model"
	"hipo/internal/power"
)

// RenderCells writes an SVG visualizing the feasible geometric areas
// (Section 4.1.2) of every device for charger type q: full cells as filled
// annular-sector paths colored by approximated power (darker = stronger),
// partial (occlusion-clipped) cells hatched lighter, over the obstacles and
// devices. A visual companion to internal/cells for debugging
// discretization.
func RenderCells(w io.Writer, sc *model.Scenario, q int, eps float64, opt Options) error {
	if opt.Scale <= 0 {
		opt.Scale = 12
	}
	s := opt.Scale
	width := sc.Region.Width()*s + 20
	height := sc.Region.Height()*s + 40
	tx := func(p geom.Vec) (float64, float64) {
		return 10 + (p.X-sc.Region.Min.X)*s,
			height - 10 - (p.Y-sc.Region.Min.Y)*s
	}
	var err error
	pf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	pf(`<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f">`+"\n", width, height)
	pf(`<rect width="100%%" height="100%%" fill="white"/>` + "\n")
	if opt.Title != "" {
		pf(`<text x="12" y="18" font-family="sans-serif" font-size="13">%s</text>`+"\n", opt.Title)
	}

	eps1 := power.Eps1ForEps(eps)
	// Normalize colors by the strongest cell power.
	maxPw := 1e-12
	perDevice := make([][]cells.Cell, len(sc.Devices))
	for j := range sc.Devices {
		perDevice[j] = cells.DeviceCells(sc, q, j, eps1)
		for _, c := range perDevice[j] {
			if c.Power > maxPw {
				maxPw = c.Power
			}
		}
	}
	for j, cs := range perDevice {
		dev := sc.Devices[j].Pos
		for _, c := range cs {
			opacity := 0.15 + 0.45*c.Power/maxPw
			fill := "#1f77b4"
			if c.Partial {
				fill = "#9467bd"
				opacity *= 0.6
			}
			drawAnnularSector(pf, tx, dev, c.R0, c.R1, c.Arc, s, fill, opacity)
		}
	}

	for _, o := range sc.Obstacles {
		pf(`<polygon points="`)
		for _, v := range o.Shape.Vertices {
			px, py := tx(v)
			pf("%.1f,%.1f ", px, py)
		}
		pf(`" fill="#999" stroke="#444"/>` + "\n")
	}
	for _, d := range sc.Devices {
		px, py := tx(d.Pos)
		pf(`<circle cx="%.1f" cy="%.1f" r="3" fill="black"/>`+"\n", px, py)
	}
	pf("</svg>\n")
	return err
}

// drawAnnularSector emits the path for {(θ, r): θ ∈ arc, R0 ≤ r ≤ R1}.
func drawAnnularSector(pf func(string, ...any), tx func(geom.Vec) (float64, float64),
	apex geom.Vec, r0, r1 float64, arc geom.Interval, scale float64, fill string, opacity float64) {
	w := arc.Width()
	if w <= 0 {
		return
	}
	if w >= 2*math.Pi-1e-9 {
		// Full annulus.
		cx, cy := tx(apex)
		pf(`<circle cx="%.1f" cy="%.1f" r="%.1f" fill="none" stroke="%s" stroke-opacity="%.2f" stroke-width="%.1f"/>`+"\n",
			cx, cy, (r0+r1)/2*scale, fill, opacity, (r1-r0)*scale)
		return
	}
	p1 := apex.Add(geom.FromAngle(arc.Lo).Scale(r0))
	p2 := apex.Add(geom.FromAngle(arc.Lo).Scale(r1))
	p3 := apex.Add(geom.FromAngle(arc.Hi).Scale(r1))
	p4 := apex.Add(geom.FromAngle(arc.Hi).Scale(r0))
	x1, y1 := tx(p1)
	x2, y2 := tx(p2)
	x3, y3 := tx(p3)
	x4, y4 := tx(p4)
	large := 0
	if w > math.Pi {
		large = 1
	}
	pf(`<path d="M %.1f %.1f L %.1f %.1f A %.1f %.1f 0 %d 0 %.1f %.1f L %.1f %.1f A %.1f %.1f 0 %d 1 %.1f %.1f Z" `+
		`fill="%s" fill-opacity="%.2f" stroke="%s" stroke-opacity="0.5" stroke-width="0.5"/>`+"\n",
		x1, y1, x2, y2, r1*scale, r1*scale, large, x3, y3, x4, y4,
		r0*scale, r0*scale, large, x1, y1, fill, opacity, fill)
}
