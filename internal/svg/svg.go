// Package svg renders HIPO scenarios and placements as standalone SVG
// documents, reproducing the instance illustrations of Figure 10: devices
// as oriented wedges, chargers as colored sector rings, obstacles as gray
// polygons.
package svg

import (
	"fmt"
	"io"
	"math"

	"hipo/internal/geom"
	"hipo/internal/model"
)

// Options tunes rendering.
type Options struct {
	// Scale is pixels per scenario unit (default 12).
	Scale float64
	// Title is an optional caption drawn at the top.
	Title string
}

// typeColors cycles per charger type.
var typeColors = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e"}

// Render writes an SVG of the scenario and placement to w.
func Render(w io.Writer, sc *model.Scenario, placed []model.Strategy, opt Options) error {
	if opt.Scale <= 0 {
		opt.Scale = 12
	}
	s := opt.Scale
	width := sc.Region.Width()*s + 20
	height := sc.Region.Height()*s + 40

	// y-flip: SVG y grows downward.
	tx := func(p geom.Vec) (float64, float64) {
		return 10 + (p.X-sc.Region.Min.X)*s,
			height - 10 - (p.Y-sc.Region.Min.Y)*s
	}

	var err error
	pf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}

	pf(`<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		width, height, width, height)
	pf(`<rect width="100%%" height="100%%" fill="white"/>` + "\n")
	if opt.Title != "" {
		pf(`<text x="%0.f" y="18" font-family="sans-serif" font-size="14">%s</text>`+"\n",
			width/2-float64(len(opt.Title))*3.5, opt.Title)
	}
	// Region border.
	x0, y0 := tx(sc.Region.Min)
	x1, y1 := tx(sc.Region.Max)
	pf(`<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="none" stroke="black"/>`+"\n",
		math.Min(x0, x1), math.Min(y0, y1), math.Abs(x1-x0), math.Abs(y1-y0))

	// Obstacles.
	for _, o := range sc.Obstacles {
		pf(`<polygon points="`)
		for _, v := range o.Shape.Vertices {
			px, py := tx(v)
			pf("%.1f,%.1f ", px, py)
		}
		pf(`" fill="#999" stroke="#444"/>` + "\n")
	}

	// Charger sectors (under the device glyphs).
	for _, st := range placed {
		ct := sc.ChargerTypes[st.Type]
		color := typeColors[st.Type%len(typeColors)]
		renderSectorRing(pf, tx, st.Pos, st.Orient, ct.Alpha, ct.DMin, ct.DMax, s, color)
	}

	// Devices: a dot plus an orientation tick.
	for _, d := range sc.Devices {
		px, py := tx(d.Pos)
		pf(`<circle cx="%.1f" cy="%.1f" r="3.5" fill="black"/>`+"\n", px, py)
		tip := d.Pos.Add(geom.FromAngle(d.Orient).Scale(1.2))
		tx2, ty2 := tx(tip)
		pf(`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black" stroke-width="1.5"/>`+"\n",
			px, py, tx2, ty2)
	}

	// Charger apexes on top.
	for _, st := range placed {
		px, py := tx(st.Pos)
		color := typeColors[st.Type%len(typeColors)]
		pf(`<rect x="%.1f" y="%.1f" width="7" height="7" fill="%s" stroke="black"/>`+"\n",
			px-3.5, py-3.5, color)
	}
	pf("</svg>\n")
	return err
}

// renderSectorRing draws a translucent sector-ring path.
func renderSectorRing(pf func(string, ...any), tx func(geom.Vec) (float64, float64),
	apex geom.Vec, orient, alpha, rmin, rmax, scale float64, color string) {
	if alpha >= 2*math.Pi-1e-9 {
		// Full annulus: two circles with even-odd fill.
		cx, cy := tx(apex)
		pf(`<path d="M %.1f %.1f m -%.1f 0 a %.1f %.1f 0 1 0 %.1f 0 a %.1f %.1f 0 1 0 -%.1f 0 `+
			`M %.1f %.1f m -%.1f 0 a %.1f %.1f 0 1 0 %.1f 0 a %.1f %.1f 0 1 0 -%.1f 0" `+
			`fill="%s" fill-opacity="0.25" fill-rule="evenodd" stroke="%s" stroke-opacity="0.6"/>`+"\n",
			cx, cy, rmax*scale, rmax*scale, rmax*scale, 2*rmax*scale, rmax*scale, rmax*scale, 2*rmax*scale,
			cx, cy, rmin*scale, rmin*scale, rmin*scale, 2*rmin*scale, rmin*scale, rmin*scale, 2*rmin*scale,
			color, color)
		return
	}
	a0 := orient - alpha/2
	a1 := orient + alpha/2
	p1 := apex.Add(geom.FromAngle(a0).Scale(rmin))
	p2 := apex.Add(geom.FromAngle(a0).Scale(rmax))
	p3 := apex.Add(geom.FromAngle(a1).Scale(rmax))
	p4 := apex.Add(geom.FromAngle(a1).Scale(rmin))
	x1, y1 := tx(p1)
	x2, y2 := tx(p2)
	x3, y3 := tx(p3)
	x4, y4 := tx(p4)
	large := 0
	if alpha > math.Pi {
		large = 1
	}
	// Sweep flags are inverted by the y-flip: counterclockwise in scenario
	// space is clockwise (sweep=0) in SVG space.
	pf(`<path d="M %.1f %.1f L %.1f %.1f A %.1f %.1f 0 %d 0 %.1f %.1f L %.1f %.1f A %.1f %.1f 0 %d 1 %.1f %.1f Z" `+
		`fill="%s" fill-opacity="0.25" stroke="%s" stroke-opacity="0.6"/>`+"\n",
		x1, y1, x2, y2, rmax*scale, rmax*scale, large, x3, y3, x4, y4,
		rmin*scale, rmin*scale, large, x1, y1, color, color)
}
