package svg

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"hipo/internal/geom"
	"hipo/internal/model"
)

func svgScenario() *model.Scenario {
	return &model.Scenario{
		Region: model.Region{Min: geom.V(0, 0), Max: geom.V(40, 40)},
		ChargerTypes: []model.ChargerType{
			{Name: "c1", Alpha: math.Pi / 2, DMin: 2, DMax: 8, Count: 1},
			{Name: "c2", Alpha: 2 * math.Pi, DMin: 1, DMax: 5, Count: 1},
		},
		DeviceTypes: []model.DeviceType{{Name: "d", Alpha: math.Pi, PTh: 0.05}},
		Power: [][]model.PowerParams{
			{{A: 100, B: 40}}, {{A: 100, B: 40}},
		},
		Devices: []model.Device{
			{Pos: geom.V(10, 10), Orient: 0, Type: 0},
			{Pos: geom.V(30, 30), Orient: math.Pi, Type: 0},
		},
		Obstacles: []model.Obstacle{{Shape: geom.Rect(18, 18, 22, 22)}},
	}
}

func TestRenderProducesValidSVG(t *testing.T) {
	sc := svgScenario()
	placed := []model.Strategy{
		{Pos: geom.V(15, 10), Orient: math.Pi, Type: 0},
		{Pos: geom.V(28, 28), Orient: 0, Type: 1}, // full annulus path
	}
	var buf bytes.Buffer
	if err := Render(&buf, sc, placed, Options{Title: "test"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<svg", "</svg>", "<polygon", "<circle", "<path", "test"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// Two devices → two dots; two chargers → two squares.
	if got := strings.Count(out, "<circle"); got != 2 {
		t.Errorf("circles = %d, want 2", got)
	}
	if got := strings.Count(out, "<rect"); got != 4 { // background + border + 2 chargers
		t.Errorf("rects = %d, want 4", got)
	}
}

func TestRenderEmptyPlacement(t *testing.T) {
	var buf bytes.Buffer
	if err := Render(&buf, svgScenario(), nil, Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "</svg>") {
		t.Error("truncated SVG")
	}
}

func TestRenderCells(t *testing.T) {
	sc := svgScenario()
	var buf bytes.Buffer
	if err := RenderCells(&buf, sc, 0, 0.15, Options{Title: "cells"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<svg", "</svg>", "<path", "cells", "<polygon"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
	// The omnidirectional charger type renders annulus circles.
	var buf2 bytes.Buffer
	if err := RenderCells(&buf2, sc, 1, 0.15, Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf2.String(), "<circle") {
		t.Error("annulus rendering missing")
	}
}
