// Package power implements the practical directional charging model of
// Section 3 — Equations (1)–(3) — and the piecewise-constant approximation
// of Section 4.1.1 (Lemma 4.1) that turns the nonlinear charging power into
// finitely many distance levels.
package power

import (
	"math"

	"hipo/internal/geom"
	"hipo/internal/model"
)

// Exact returns the exact charging power from a charger placed with the
// given strategy to device j of scenario sc, per Equation (1). The result is
// zero unless all four gates hold: distance within [DMin, DMax], device
// inside the charger's charging sector, charger inside the device's
// receiving sector, and unobstructed line of sight.
func Exact(sc *model.Scenario, s model.Strategy, j int) float64 {
	dev := sc.Devices[j]
	ct := sc.ChargerTypes[s.Type]
	dt := sc.DeviceTypes[dev.Type]

	delta := dev.Pos.Sub(s.Pos)
	d := delta.Len()
	if d < ct.DMin-geom.Eps || d > ct.DMax+geom.Eps {
		return 0
	}
	// Device within the charger's sector: (o−s)·r_s ≥ d·cos(α_s/2).
	if !inSector(delta, d, s.Orient, ct.Alpha) {
		return 0
	}
	// Charger within the device's receiving sector.
	if !inSector(delta.Neg(), d, dev.Orient, dt.Alpha) {
		return 0
	}
	if !sc.LineOfSight(s.Pos, dev.Pos) {
		return 0
	}
	p := sc.Power[s.Type][dev.Type]
	return p.A / ((d + p.B) * (d + p.B))
}

// inSector reports whether a vector delta of length d from the apex falls
// within the sector of half-angle alpha/2 around orientation orient,
// matching the dot-product form of Eq. (1) with an Eps slack so that
// boundary placements count as covered.
func inSector(delta geom.Vec, d float64, orient, alpha float64) bool {
	if alpha >= 2*math.Pi-geom.Eps {
		return true
	}
	if d <= geom.Eps {
		return false
	}
	r := geom.FromAngle(orient)
	return delta.Dot(r) >= d*math.Cos(alpha/2)-geom.Eps*math.Max(1, d)
}

// Received returns the total exact power received by device j from all the
// given strategies (Equation (2): power is additive).
func Received(sc *model.Scenario, placed []model.Strategy, j int) float64 {
	total := 0.0
	for _, s := range placed {
		total += Exact(sc, s, j)
	}
	return total
}

// Utility returns the charging utility of Equation (3): min(x/Pth, 1).
func Utility(x, pth float64) float64 {
	if x >= pth {
		return 1
	}
	if x <= 0 {
		return 0
	}
	return x / pth
}

// TotalUtility returns the normalized objective of problem P1: the mean
// device utility under the given placement, using exact (not approximated)
// power.
func TotalUtility(sc *model.Scenario, placed []model.Strategy) float64 {
	if len(sc.Devices) == 0 {
		return 0
	}
	sum := 0.0
	for j := range sc.Devices {
		x := Received(sc, placed, j)
		sum += Utility(x, sc.DeviceTypes[sc.Devices[j].Type].PTh)
	}
	return sum / float64(len(sc.Devices))
}

// DeviceUtilities returns the per-device utility vector for a placement.
func DeviceUtilities(sc *model.Scenario, placed []model.Strategy) []float64 {
	out := make([]float64, len(sc.Devices))
	for j := range sc.Devices {
		x := Received(sc, placed, j)
		out[j] = Utility(x, sc.DeviceTypes[sc.Devices[j].Type].PTh)
	}
	return out
}

// DevicePowers returns the per-device exact received power for a placement.
func DevicePowers(sc *model.Scenario, placed []model.Strategy) []float64 {
	out := make([]float64, len(sc.Devices))
	for j := range sc.Devices {
		out[j] = Received(sc, placed, j)
	}
	return out
}

// Levels holds the distance breakpoints of the piecewise-constant power
// approximation for one (charger type, device type) pair, per Lemma 4.1:
//
//	l(k) = b((1+ε₁)^{k/2} − 1),  k = k₀ … K−1,   l(K) = d_max,
//
// with P̃(d) = P(l(k)) for l(k−1) < d ≤ l(k). The guarantee is
// 1 ≤ P(d)/P̃(d) ≤ 1+ε₁ on [d_min, d_max].
type Levels struct {
	A, B       float64
	DMin, DMax float64
	Eps1       float64
	// Break[i] are the increasing distance breakpoints; the approximation
	// bands are (Break[i-1], Break[i]] with Break[len-1] = DMax. Break[0] is
	// the first level ≥ DMin, i.e. l(k₀).
	Break []float64
}

// NewLevels computes the distance levels of Lemma 4.1 for constants a, b,
// distance range [dmin, dmax], and approximation parameter eps1 > 0.
func NewLevels(a, b, dmin, dmax, eps1 float64) Levels {
	lv := Levels{A: a, B: b, DMin: dmin, DMax: dmax, Eps1: eps1}
	if b <= 0 || eps1 <= 0 {
		// Degenerate model parameters: the level recurrence below divides by
		// b and log(1+ε₁); fall back to a single band covering everything.
		lv.Break = append(lv.Break, dmax)
		return lv
	}
	logBase := math.Log1p(eps1)
	// k₀ = ⌈2 ln(dmin/b + 1)/ln(1+ε₁)⌉, K = ⌈2 ln(dmax/b + 1)/ln(1+ε₁)⌉.
	k0 := int(math.Ceil(2 * math.Log(dmin/b+1) / logBase))
	kMax := int(math.Ceil(2 * math.Log(dmax/b+1) / logBase))
	if k0 < 0 {
		k0 = 0
	}
	for k := k0; k < kMax; k++ {
		l := b * (math.Pow(1+eps1, float64(k)/2) - 1)
		if l >= dmax-geom.Eps {
			break
		}
		if l < dmin-geom.Eps {
			// Can happen for k = k₀ when dmin sits exactly on a level
			// boundary; skip levels strictly below dmin.
			continue
		}
		lv.Break = append(lv.Break, l)
	}
	lv.Break = append(lv.Break, dmax)
	return lv
}

// PowerAt returns the exact power at distance d (no gating).
func (lv Levels) PowerAt(d float64) float64 {
	den := (d + lv.B) * (d + lv.B)
	if den <= 0 {
		// Only reachable when d = −B, outside the physical domain d ≥ 0.
		return 0
	}
	return lv.A / den
}

// Approx returns the piecewise-constant approximation P̃(d): the exact power
// at the upper breakpoint of d's band, or 0 outside [DMin, DMax].
func (lv Levels) Approx(d float64) float64 {
	if d < lv.DMin-geom.Eps || d > lv.DMax+geom.Eps {
		return 0
	}
	i := lv.BandIndex(d)
	return lv.PowerAt(lv.Break[i])
}

// BandIndex returns the index i of the band (Break[i-1], Break[i]]
// containing d, clamping into range. d must be within [DMin, DMax].
func (lv Levels) BandIndex(d float64) int {
	// Binary search for the first breakpoint ≥ d.
	lo, hi := 0, len(lv.Break)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if lv.Break[mid] >= d-geom.Eps {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// NumBands returns the number of approximation bands (O(1/ε₁)).
func (lv Levels) NumBands() int { return len(lv.Break) }

// Eps1ForEps converts the overall approximation target ε of Theorem 4.2 to
// the level parameter ε₁ = 2ε/(1−2ε). ε must be in (0, 1/2).
func Eps1ForEps(eps float64) float64 {
	den := 1 - 2*eps
	if den <= 0 {
		// ε ≥ 1/2 is outside the documented domain; saturate instead of
		// returning a negative or infinite level parameter.
		return math.Inf(1)
	}
	return 2 * eps / den
}
