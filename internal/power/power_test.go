package power

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hipo/internal/geom"
	"hipo/internal/model"
)

func testScenario() *model.Scenario {
	return &model.Scenario{
		Region: model.Region{Min: geom.V(0, 0), Max: geom.V(40, 40)},
		ChargerTypes: []model.ChargerType{
			{Name: "c1", Alpha: math.Pi / 2, DMin: 2, DMax: 10, Count: 3},
		},
		DeviceTypes: []model.DeviceType{
			{Name: "d1", Alpha: math.Pi, PTh: 0.05},
		},
		Power: [][]model.PowerParams{{{A: 100, B: 40}}},
		Devices: []model.Device{
			// Device at (20,20) facing left (towards smaller x).
			{Pos: geom.V(20, 20), Orient: math.Pi, Type: 0},
		},
	}
}

func TestExactBasicGates(t *testing.T) {
	sc := testScenario()
	// Charger 5m left of the device, facing right: in range, both sectors OK.
	s := model.Strategy{Pos: geom.V(15, 20), Orient: 0, Type: 0}
	want := 100.0 / ((5 + 40) * (5 + 40))
	if got := Exact(sc, s, 0); !almostEq(got, want, 1e-12) {
		t.Errorf("Exact = %v, want %v", got, want)
	}
	// Too close (d=1 < DMin=2).
	if got := Exact(sc, model.Strategy{Pos: geom.V(19, 20), Orient: 0, Type: 0}, 0); got != 0 {
		t.Errorf("too-close charger gives %v", got)
	}
	// Too far (d=15 > DMax=10).
	if got := Exact(sc, model.Strategy{Pos: geom.V(5, 20), Orient: 0, Type: 0}, 0); got != 0 {
		t.Errorf("too-far charger gives %v", got)
	}
	// Charger facing away from the device.
	if got := Exact(sc, model.Strategy{Pos: geom.V(15, 20), Orient: math.Pi, Type: 0}, 0); got != 0 {
		t.Errorf("away-facing charger gives %v", got)
	}
	// Charger behind the device (device faces π, charger to its right).
	if got := Exact(sc, model.Strategy{Pos: geom.V(25, 20), Orient: math.Pi, Type: 0}, 0); got != 0 {
		t.Errorf("charger outside receiving sector gives %v", got)
	}
}

func TestExactObstacleBlocks(t *testing.T) {
	sc := testScenario()
	s := model.Strategy{Pos: geom.V(15, 20), Orient: 0, Type: 0}
	if Exact(sc, s, 0) == 0 {
		t.Fatal("precondition: charger should reach device")
	}
	sc.Obstacles = append(sc.Obstacles, model.Obstacle{Shape: geom.Rect(16, 19, 18, 21)})
	if got := Exact(sc, s, 0); got != 0 {
		t.Errorf("obstacle-blocked power = %v, want 0", got)
	}
	// Obstacle off the line of sight: power restored.
	sc.Obstacles[0].Shape = geom.Rect(16, 25, 18, 27)
	if got := Exact(sc, s, 0); got == 0 {
		t.Error("off-path obstacle should not block")
	}
}

func TestExactSectorBoundaryInclusive(t *testing.T) {
	sc := testScenario()
	// Place the device exactly on the charger's sector edge (45° off axis).
	d := 5.0
	pos := geom.V(20, 20).Sub(geom.FromAngle(math.Pi / 4).Scale(d))
	s := model.Strategy{Pos: pos, Orient: 0, Type: 0}
	// Device at exactly α/2 = 45° from orientation 0: boundary counts.
	sc.Devices[0].Orient = geom.NormAngle(math.Pi + math.Pi/4) // face the charger
	if got := Exact(sc, s, 0); got == 0 {
		t.Error("device on sector boundary should be charged")
	}
}

func TestReceivedAdditive(t *testing.T) {
	sc := testScenario()
	s1 := model.Strategy{Pos: geom.V(15, 20), Orient: 0, Type: 0}
	s2 := model.Strategy{Pos: geom.V(17, 20), Orient: 0, Type: 0}
	p1 := Exact(sc, s1, 0)
	p2 := Exact(sc, s2, 0)
	if p1 == 0 || p2 == 0 {
		t.Fatal("precondition: both chargers reach device")
	}
	got := Received(sc, []model.Strategy{s1, s2}, 0)
	if !almostEq(got, p1+p2, 1e-12) {
		t.Errorf("Received = %v, want %v", got, p1+p2)
	}
}

func TestUtility(t *testing.T) {
	if got := Utility(0.025, 0.05); !almostEq(got, 0.5, 1e-12) {
		t.Errorf("Utility = %v", got)
	}
	if got := Utility(0.1, 0.05); got != 1 {
		t.Errorf("saturated Utility = %v", got)
	}
	if got := Utility(0, 0.05); got != 0 {
		t.Errorf("zero Utility = %v", got)
	}
	if got := Utility(-1, 0.05); got != 0 {
		t.Errorf("negative Utility = %v", got)
	}
	if got := Utility(0.05, 0.05); got != 1 {
		t.Errorf("exact-threshold Utility = %v", got)
	}
}

func TestTotalUtilityAndVectors(t *testing.T) {
	sc := testScenario()
	sc.Devices = append(sc.Devices, model.Device{Pos: geom.V(35, 35), Orient: 0, Type: 0})
	s := model.Strategy{Pos: geom.V(15, 20), Orient: 0, Type: 0}
	placed := []model.Strategy{s}
	us := DeviceUtilities(sc, placed)
	if len(us) != 2 {
		t.Fatalf("utilities len = %d", len(us))
	}
	if us[0] <= 0 || us[1] != 0 {
		t.Errorf("utilities = %v", us)
	}
	tot := TotalUtility(sc, placed)
	if !almostEq(tot, (us[0]+us[1])/2, 1e-12) {
		t.Errorf("TotalUtility = %v", tot)
	}
	ps := DevicePowers(sc, placed)
	if ps[0] <= 0 || ps[1] != 0 {
		t.Errorf("powers = %v", ps)
	}
}

func TestLevelsBounds(t *testing.T) {
	lv := NewLevels(100, 40, 2, 10, 0.3)
	if lv.NumBands() < 1 {
		t.Fatal("no bands")
	}
	// Last breakpoint must be dmax.
	if !almostEq(lv.Break[lv.NumBands()-1], 10, 1e-12) {
		t.Errorf("last break = %v", lv.Break[lv.NumBands()-1])
	}
	// Breakpoints strictly increasing and within (dmin-band, dmax].
	for i := 1; i < len(lv.Break); i++ {
		if lv.Break[i] <= lv.Break[i-1] {
			t.Errorf("breaks not increasing: %v", lv.Break)
		}
	}
}

// Property (Lemma 4.1): 1 ≤ P(d)/P̃(d) ≤ 1+ε₁ for all d in [dmin, dmax].
func TestLevelsApproximationGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 50; trial++ {
		a := 50 + rng.Float64()*200
		b := 20 + rng.Float64()*80
		dmin := rng.Float64() * 5
		dmax := dmin + 1 + rng.Float64()*10
		eps1 := 0.05 + rng.Float64()*0.5
		lv := NewLevels(a, b, dmin, dmax, eps1)
		for probe := 0; probe < 200; probe++ {
			d := dmin + rng.Float64()*(dmax-dmin)
			exact := lv.PowerAt(d)
			approx := lv.Approx(d)
			if approx <= 0 {
				t.Fatalf("approx power non-positive at d=%v", d)
			}
			ratio := exact / approx
			if ratio < 1-1e-9 || ratio > 1+eps1+1e-9 {
				t.Fatalf("ratio %v outside [1, 1+ε₁=%v] at d=%v (trial %d)",
					ratio, 1+eps1, d, trial)
			}
		}
		// Outside the range the approximation is zero.
		if lv.Approx(dmin-0.1) != 0 || lv.Approx(dmax+0.1) != 0 {
			t.Fatal("approx should vanish outside [dmin, dmax]")
		}
	}
}

// Property: the number of bands grows like O(1/ε₁).
func TestLevelsBandCountScaling(t *testing.T) {
	n1 := NewLevels(100, 40, 1, 10, 0.4).NumBands()
	n2 := NewLevels(100, 40, 1, 10, 0.1).NumBands()
	if n2 <= n1 {
		t.Errorf("finer eps should yield more bands: %d vs %d", n1, n2)
	}
}

func TestEps1ForEps(t *testing.T) {
	// ε = 0.15 → ε₁ = 0.3/0.7.
	if got := Eps1ForEps(0.15); !almostEq(got, 0.3/0.7, 1e-12) {
		t.Errorf("Eps1ForEps = %v", got)
	}
	// Theorem 4.2 relation: 1/(2(1+ε₁)) = 1/2 − ε.
	f := func(raw float64) bool {
		eps := math.Mod(math.Abs(raw), 0.49)
		if eps < 1e-6 {
			return true
		}
		eps1 := Eps1ForEps(eps)
		return almostEq(1/(2*(1+eps1)), 0.5-eps, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBandIndexMonotone(t *testing.T) {
	lv := NewLevels(100, 40, 2, 10, 0.2)
	prev := -1
	for d := 2.0; d <= 10; d += 0.05 {
		i := lv.BandIndex(d)
		if i < prev {
			t.Fatalf("band index decreased at d=%v", d)
		}
		if d > lv.Break[i]+1e-9 {
			t.Fatalf("d=%v above its band's upper break %v", d, lv.Break[i])
		}
		prev = i
	}
}

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
