package baselines

import (
	"math"
	"math/rand"
	"testing"

	"hipo/internal/geom"
	"hipo/internal/model"
	"hipo/internal/power"
)

func testScenario() *model.Scenario {
	sc := &model.Scenario{
		Region: model.Region{Min: geom.V(0, 0), Max: geom.V(40, 40)},
		ChargerTypes: []model.ChargerType{
			{Name: "c1", Alpha: math.Pi / 2, DMin: 2, DMax: 8, Count: 3},
			{Name: "c2", Alpha: math.Pi, DMin: 1, DMax: 6, Count: 2},
		},
		DeviceTypes: []model.DeviceType{
			{Name: "d1", Alpha: math.Pi, PTh: 0.05},
		},
		Power: [][]model.PowerParams{
			{{A: 100, B: 40}},
			{{A: 120, B: 48}},
		},
		Obstacles: []model.Obstacle{{Shape: geom.Rect(18, 18, 22, 22)}},
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 8; i++ {
		for {
			p := geom.V(rng.Float64()*40, rng.Float64()*40)
			if sc.FeasiblePosition(p) {
				sc.Devices = append(sc.Devices, model.Device{
					Pos: p, Orient: rng.Float64() * 2 * math.Pi, Type: 0,
				})
				break
			}
		}
	}
	return sc
}

func checkPlacement(t *testing.T, sc *model.Scenario, placed []model.Strategy, name string) {
	t.Helper()
	counts := make(map[int]int)
	for _, s := range placed {
		counts[s.Type]++
		if !sc.FeasiblePosition(s.Pos) {
			t.Errorf("%s: infeasible position %v", name, s.Pos)
		}
	}
	for q, ct := range sc.ChargerTypes {
		if counts[q] > ct.Count {
			t.Errorf("%s: type %d over budget (%d > %d)", name, q, counts[q], ct.Count)
		}
	}
}

func TestAllBaselinesRun(t *testing.T) {
	sc := testScenario()
	rng := rand.New(rand.NewSource(1))
	for _, name := range All() {
		placed := Run(name, sc, rng, 0.4)
		checkPlacement(t, sc, placed, name)
		u := power.TotalUtility(sc, placed)
		if u < 0 || u > 1 {
			t.Errorf("%s: utility %v out of range", name, u)
		}
	}
}

func TestRPARUsesFullBudget(t *testing.T) {
	sc := testScenario()
	placed := RPAR(sc, rand.New(rand.NewSource(2)))
	if len(placed) != sc.TotalChargers() {
		t.Errorf("RPAR placed %d, want %d", len(placed), sc.TotalChargers())
	}
}

func TestRPADBeatsRPAROnAverage(t *testing.T) {
	sc := testScenario()
	sumRPAR, sumRPAD := 0.0, 0.0
	const runs = 20
	for i := 0; i < runs; i++ {
		rng1 := rand.New(rand.NewSource(int64(100 + i)))
		rng2 := rand.New(rand.NewSource(int64(100 + i)))
		sumRPAR += power.TotalUtility(sc, RPAR(sc, rng1))
		sumRPAD += power.TotalUtility(sc, RPAD(sc, rng2))
	}
	if sumRPAD < sumRPAR {
		t.Errorf("RPAD average %v below RPAR %v", sumRPAD/runs, sumRPAR/runs)
	}
}

func TestGPADBeatsGPAROnAverage(t *testing.T) {
	sc := testScenario()
	sumAR, sumAD := 0.0, 0.0
	const runs = 10
	for i := 0; i < runs; i++ {
		rng := rand.New(rand.NewSource(int64(200 + i)))
		sumAR += power.TotalUtility(sc, GPAR(sc, rng, Square))
		sumAD += power.TotalUtility(sc, GPAD(sc, Square))
	}
	if sumAD < sumAR {
		t.Errorf("GPAD average %v below GPAR %v", sumAD/runs, sumAR/runs)
	}
}

func TestGPPDCSAtLeastGPAD(t *testing.T) {
	// GPPDCS's point-case PDCS orientations dominate GPAD's fixed grid of
	// orientations in coverage terms, so its greedy value shouldn't be
	// dramatically worse. We assert it reaches at least 90% of GPAD here
	// (exact dominance holds per-point for coverage sets, not utilities).
	sc := testScenario()
	uAD := power.TotalUtility(sc, GPAD(sc, Triangle))
	uPD := power.TotalUtility(sc, GPPDCS(sc, Triangle, 0.4))
	if uPD < 0.9*uAD {
		t.Errorf("GPPDCS %v far below GPAD %v", uPD, uAD)
	}
}

func TestGridPoints(t *testing.T) {
	sc := testScenario()
	sq := GridPoints(sc, 0, Square)
	tr := GridPoints(sc, 0, Triangle)
	if len(sq) == 0 || len(tr) == 0 {
		t.Fatal("empty grids")
	}
	for _, p := range append(append([]geom.Vec{}, sq...), tr...) {
		if !sc.FeasiblePosition(p) {
			t.Errorf("infeasible grid point %v", p)
		}
	}
	// Square spacing check: first two x-values differ by √2/2·dmax.
	spacing := math.Sqrt2 / 2 * sc.ChargerTypes[0].DMax
	if math.Abs(sq[1].Y-sq[0].Y-spacing) > 1e-9 && math.Abs(sq[1].X-sq[0].X) > 1e-9 {
		t.Errorf("unexpected square spacing: %v %v", sq[0], sq[1])
	}
	// Obstacle interior excluded.
	for _, p := range sq {
		if sc.Obstacles[0].Shape.ContainsInterior(p) {
			t.Errorf("grid point inside obstacle: %v", p)
		}
	}
}

func TestDiscreteOrients(t *testing.T) {
	os := discreteOrients(math.Pi / 2)
	if len(os) != 4 {
		t.Errorf("orients for π/2 = %d, want 4", len(os))
	}
	os = discreteOrients(math.Pi / 3)
	if len(os) != 6 {
		t.Errorf("orients for π/3 = %d, want 6", len(os))
	}
	// Non-divisor angle rounds up.
	os = discreteOrients(2.5)
	if len(os) != 3 {
		t.Errorf("orients for 2.5 = %d, want 3", len(os))
	}
}

func TestRunUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unknown baseline")
		}
	}()
	Run("nope", testScenario(), rand.New(rand.NewSource(1)), 0.4)
}
