// Package baselines implements the eight comparison algorithms of Section
// 6: Randomized Position with Angular Randomization/Discretization (RPAR,
// RPAD), Grid Point with Angular Randomization/Discretization (GPAR, GPAD)
// on square and triangular grids, and Grid Point with PDCS point-case
// extraction (GPPDCS) on both grids. Grid spacing is √2/2 · d_max per
// charger type, as in the paper.
package baselines

import (
	"math"
	"math/rand"

	"hipo/internal/geom"
	"hipo/internal/model"
	"hipo/internal/pdcs"
	"hipo/internal/power"
	"hipo/internal/submodular"
)

// Grid selects the grid layout for the grid-point algorithms.
type Grid int

const (
	// Square is the square lattice with spacing √2/2·d_max.
	Square Grid = iota
	// Triangle is the equilateral triangular lattice with the same spacing.
	Triangle
)

// Name strings used in experiment reports, matching the paper's legends.
const (
	NameRPAR           = "RPAR"
	NameRPAD           = "RPAD"
	NameGPARSquare     = "GPAR Square"
	NameGPARTriangle   = "GPAR Triangle"
	NameGPADSquare     = "GPAD Square"
	NameGPADTriangle   = "GPAD Triangle"
	NameGPPDCSSquare   = "GPPDCS Square"
	NameGPPDCSTriangle = "GPPDCS Triangle"
	NameHIPO           = "HIPO"
)

// All lists the baseline names in the paper's strongest-to-weakest order.
func All() []string {
	return []string{
		NameGPPDCSTriangle, NameGPPDCSSquare,
		NameGPADTriangle, NameGPADSquare,
		NameGPARTriangle, NameGPARSquare,
		NameRPAD, NameRPAR,
	}
}

// Run executes the named baseline on the scenario with the given PRNG and
// returns the placed strategies. eps1 parameterizes the PDCS point-case
// sweep used by GPPDCS.
func Run(name string, sc *model.Scenario, rng *rand.Rand, eps1 float64) []model.Strategy {
	switch name {
	case NameRPAR:
		return RPAR(sc, rng)
	case NameRPAD:
		return RPAD(sc, rng)
	case NameGPARSquare:
		return GPAR(sc, rng, Square)
	case NameGPARTriangle:
		return GPAR(sc, rng, Triangle)
	case NameGPADSquare:
		return GPAD(sc, Square)
	case NameGPADTriangle:
		return GPAD(sc, Triangle)
	case NameGPPDCSSquare:
		return GPPDCS(sc, Square, eps1)
	case NameGPPDCSTriangle:
		return GPPDCS(sc, Triangle, eps1)
	default:
		panic("baselines: unknown algorithm " + name)
	}
}

// RPAR places every charger at a uniformly random feasible position with a
// uniformly random orientation.
func RPAR(sc *model.Scenario, rng *rand.Rand) []model.Strategy {
	var out []model.Strategy
	for q, ct := range sc.ChargerTypes {
		for k := 0; k < ct.Count; k++ {
			out = append(out, model.Strategy{
				Pos:    randomFeasible(sc, rng),
				Orient: rng.Float64() * 2 * math.Pi,
				Type:   q,
			})
		}
	}
	return out
}

// RPAD draws random feasible positions like RPAR but, at each position,
// enumerates the orientations {0, α_s, 2α_s, …} and greedily keeps the one
// with the largest utility increment given the chargers placed so far.
func RPAD(sc *model.Scenario, rng *rand.Rand) []model.Strategy {
	var out []model.Strategy
	for q, ct := range sc.ChargerTypes {
		for k := 0; k < ct.Count; k++ {
			pos := randomFeasible(sc, rng)
			best := model.Strategy{Pos: pos, Orient: 0, Type: q}
			bestGain := -1.0
			base := power.TotalUtility(sc, out)
			for _, phi := range discreteOrients(ct.Alpha) {
				s := model.Strategy{Pos: pos, Orient: phi, Type: q}
				gain := power.TotalUtility(sc, append(out, s)) - base
				if gain > bestGain {
					best, bestGain = s, gain
				}
			}
			out = append(out, best)
		}
	}
	return out
}

// GPAR builds the per-type grid and greedily selects grid points, but with
// a random orientation attached to every grid point (positions are chosen
// well, orientations are not).
func GPAR(sc *model.Scenario, rng *rand.Rand, g Grid) []model.Strategy {
	gen := func(sc *model.Scenario, q int, p geom.Vec) []model.Strategy {
		return []model.Strategy{{Pos: p, Orient: rng.Float64() * 2 * math.Pi, Type: q}}
	}
	return greedyOverGrid(sc, g, gen)
}

// GPAD builds the per-type grid and considers every discretized orientation
// {0, α_s, 2α_s, …} at every grid point, selecting greedily.
func GPAD(sc *model.Scenario, g Grid) []model.Strategy {
	gen := func(sc *model.Scenario, q int, p geom.Vec) []model.Strategy {
		var out []model.Strategy
		for _, phi := range discreteOrients(sc.ChargerTypes[q].Alpha) {
			out = append(out, model.Strategy{Pos: p, Orient: phi, Type: q})
		}
		return out
	}
	return greedyOverGrid(sc, g, gen)
}

// GPPDCS replaces GPAD's orientation enumeration with the PDCS point-case
// extraction (Algorithm 1) at every grid point: orientations are exactly the
// dominating ones.
func GPPDCS(sc *model.Scenario, g Grid, eps1 float64) []model.Strategy {
	gen := func(sc *model.Scenario, q int, p geom.Vec) []model.Strategy {
		var out []model.Strategy
		for _, c := range pdcs.SweepPoint(sc, q, p, eps1) {
			out = append(out, c.S)
		}
		return out
	}
	return greedyOverGrid(sc, g, gen)
}

// greedyOverGrid generates candidate strategies at the grid points of each
// charger type using gen, then greedily selects within the per-type budgets
// using the exact utility objective via a submodular instance built from
// exact powers.
func greedyOverGrid(sc *model.Scenario, g Grid, gen func(*model.Scenario, int, geom.Vec) []model.Strategy) []model.Strategy {
	inst := &submodular.Instance{
		Phi:         make([]submodular.Scalar, len(sc.Devices)),
		Weight:      make([]float64, len(sc.Devices)),
		Budget:      make([]int, len(sc.ChargerTypes)),
		AllowRepeat: true, // stacking chargers on one grid strategy is legal
	}
	for j := range sc.Devices {
		inst.Phi[j] = submodular.UtilityPhi(sc.DeviceTypes[sc.Devices[j].Type].PTh)
		inst.Weight[j] = 1 / float64(len(sc.Devices))
	}
	var flat []model.Strategy
	for q, ct := range sc.ChargerTypes {
		inst.Budget[q] = ct.Count
		for _, p := range GridPoints(sc, q, g) {
			for _, s := range gen(sc, q, p) {
				el := submodular.Element{Part: q}
				for j := range sc.Devices {
					if pw := power.Exact(sc, s, j); pw > 0 {
						el.Covers = append(el.Covers, submodular.Entry{Device: j, Power: pw})
					}
				}
				inst.Elements = append(inst.Elements, el)
				flat = append(flat, s)
			}
		}
	}
	res := submodular.GreedyLazy(inst)
	out := make([]model.Strategy, 0, len(res.Selected))
	for _, e := range res.Selected {
		out = append(out, flat[e])
	}
	return out
}

// GridPoints returns the feasible grid points for charger type q under the
// chosen lattice, spacing √2/2 · d_max.
func GridPoints(sc *model.Scenario, q int, g Grid) []geom.Vec {
	spacing := math.Sqrt2 / 2 * sc.ChargerTypes[q].DMax
	var out []geom.Vec
	switch g {
	case Square:
		for x := sc.Region.Min.X; x <= sc.Region.Max.X+geom.Eps; x += spacing {
			for y := sc.Region.Min.Y; y <= sc.Region.Max.Y+geom.Eps; y += spacing {
				p := geom.V(x, y)
				if sc.FeasiblePosition(p) {
					out = append(out, p)
				}
			}
		}
	case Triangle:
		rowHeight := spacing * math.Sqrt(3) / 2
		row := 0
		for y := sc.Region.Min.Y; y <= sc.Region.Max.Y+geom.Eps; y += rowHeight {
			offset := 0.0
			if row%2 == 1 {
				offset = spacing / 2
			}
			for x := sc.Region.Min.X + offset; x <= sc.Region.Max.X+geom.Eps; x += spacing {
				p := geom.V(x, y)
				if sc.FeasiblePosition(p) {
					out = append(out, p)
				}
			}
			row++
		}
	}
	return out
}

// discreteOrients returns {0, α, 2α, …} up to ⌈2π/α⌉ values, the RPAD/GPAD
// orientation set.
func discreteOrients(alpha float64) []float64 {
	n := int(math.Ceil(2 * math.Pi / alpha))
	if n < 1 {
		n = 1
	}
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, geom.NormAngle(float64(i)*alpha))
	}
	return out
}

// randomFeasible rejection-samples a feasible position, mirroring the
// paper's "repeat the process until a feasible position is obtained".
func randomFeasible(sc *model.Scenario, rng *rand.Rand) geom.Vec {
	for {
		p := geom.V(
			sc.Region.Min.X+rng.Float64()*sc.Region.Width(),
			sc.Region.Min.Y+rng.Float64()*sc.Region.Height(),
		)
		if sc.FeasiblePosition(p) {
			return p
		}
	}
}
