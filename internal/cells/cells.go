// Package cells materializes the feasible geometric areas of Section 4.1.2
// for a single device: the sector-ring receiving area of Figure 1, cut by
// the distance levels of Lemma 4.1 into bands, and by obstacle occlusion
// into visible/invisible angular spans. A charger anywhere inside one cell
// provides the device the same constant approximated charging power — the
// defining property of a feasible geometric area.
//
// The decomposition is exact: band boundaries come from the closed-form
// level radii, and occlusion boundaries from clipping obstacle edges to the
// band's outer circle (so the angular events are obstacle vertices and
// edge/circle intersection points, the same critical angles the paper's
// construction uses). Cells are used to validate candidate generation, to
// verify the region-count bound of Lemma 4.4 empirically, and for
// feasible-area statistics.
package cells

import (
	"math"

	"hipo/internal/discretize"
	"hipo/internal/geom"
	"hipo/internal/model"
	"hipo/internal/power"
	"hipo/internal/radial"
)

// Cell is one feasible geometric area of a device: chargers of the cell's
// type placed anywhere inside deliver the same approximated power.
type Cell struct {
	// Device and Type identify whose receiving area this cell belongs to.
	Device, Type int
	// Band is the distance-level band index; the radial extent is
	// (R0, R1].
	Band   int
	R0, R1 float64
	// Arc is the angular extent (as seen from the device).
	Arc geom.Interval
	// Power is the constant approximated charging power of the cell.
	Power float64
	// Partial marks cells whose outer radial boundary is the occlusion
	// profile ρ(θ) rather than R1: the region is {(θ, r) : θ ∈ Arc,
	// R0 < r ≤ min(R1, ρ(θ))} with ρ(θ) < R1 somewhere on the arc.
	Partial bool
}

// Contains reports whether the point p (with the device's occlusion profile
// prof) lies in the cell.
func (c *Cell) Contains(dev geom.Vec, prof *radial.Profile, p geom.Vec) bool {
	delta := p.Sub(dev)
	r := delta.Len()
	if r <= c.R0+geom.Eps || r > c.R1+geom.Eps {
		return false
	}
	theta := delta.Angle()
	if !c.Arc.Contains(theta) {
		return false
	}
	return prof.Visible(theta, r)
}

// DeviceCells computes the feasible geometric areas of device j for charger
// type q under approximation parameter eps1.
func DeviceCells(sc *model.Scenario, q, j int, eps1 float64) []Cell {
	dev := sc.Devices[j]
	dt := sc.DeviceTypes[dev.Type]
	ct := sc.ChargerTypes[q]
	pp := sc.Power[q][dev.Type]
	lv := power.NewLevels(pp.A, pp.B, ct.DMin, ct.DMax, eps1)
	radii := discretize.Radii(sc, q, j, eps1)

	// The receiving interval.
	var recv geom.Interval
	if dt.Alpha >= 2*math.Pi-geom.Eps {
		recv = geom.FullCircle()
	} else {
		recv = geom.NewInterval(dev.Orient-dt.Alpha/2, dev.Orient+dt.Alpha/2)
	}

	var out []Cell
	for band := 1; band < len(radii); band++ {
		r0, r1 := radii[band-1], radii[band]
		pw := lv.Approx((r0 + r1) / 2)
		// Occlusion within this band: directions whose first obstacle hit
		// is before the band's outer radius. "Fully visible" spans become
		// full cells; spans where ρ crosses the band become partial cells.
		blockedOuter := shadowWithin(sc, dev.Pos, r1) // ρ(θ) < r1
		blockedInner := shadowWithin(sc, dev.Pos, r0) // ρ(θ) ≤ r0 (no room at all)

		for _, span := range intersectIntervals(recv, blockedOuter.Complement()) {
			out = append(out, Cell{
				Device: j, Type: q, Band: band, R0: r0, R1: r1,
				Arc: span, Power: pw,
			})
		}
		// Partial cells: visible beyond r0 but occluded before r1.
		for _, shadow := range blockedOuter.Intervals() {
			for _, span := range intersectIntervals(recv, []geom.Interval{shadow}) {
				// Remove the completely hopeless part (ρ ≤ r0).
				for _, usable := range subtractIntervals(span, blockedInner.Intervals()) {
					if usable.Width() <= 1e-9 {
						continue
					}
					out = append(out, Cell{
						Device: j, Type: q, Band: band, R0: r0, R1: r1,
						Arc: usable, Power: pw, Partial: true,
					})
				}
			}
		}
	}
	return out
}

// shadowWithin returns the angular set whose rays from origin hit an
// obstacle strictly within distance r: the shadows cast by the obstacle
// portions clipped to the disk of radius r.
func shadowWithin(sc *model.Scenario, origin geom.Vec, r float64) *geom.IntervalSet {
	var s geom.IntervalSet
	disk := geom.Circle{C: origin, R: r}
	for _, o := range sc.Obstacles {
		if o.Shape.ContainsPoint(origin) {
			s.Add(geom.FullCircle())
			return &s
		}
		for _, e := range o.Shape.Edges() {
			seg, ok := clipSegmentToDisk(e, disk)
			if !ok {
				continue
			}
			ta := seg.A.Sub(origin).Angle()
			tb := seg.B.Sub(origin).Angle()
			d := geom.AngleDiff(ta, tb)
			if math.Abs(d) <= geom.Eps {
				continue
			}
			if d > 0 {
				s.Add(geom.NewInterval(ta, ta+d))
			} else {
				s.Add(geom.NewInterval(tb, tb-d))
			}
		}
	}
	return &s
}

// clipSegmentToDisk returns the part of seg inside the closed disk, if any.
func clipSegmentToDisk(seg geom.Segment, disk geom.Circle) (geom.Segment, bool) {
	aIn := disk.ContainsPoint(seg.A)
	bIn := disk.ContainsPoint(seg.B)
	if aIn && bIn {
		return seg, true
	}
	pts := geom.CircleSegmentIntersections(disk, seg)
	switch {
	case aIn && len(pts) >= 1:
		return geom.Seg(seg.A, pts[0]), true
	case bIn && len(pts) >= 1:
		return geom.Seg(pts[0], seg.B), true
	case len(pts) >= 2:
		return geom.Seg(pts[0], pts[1]), true
	default:
		return geom.Segment{}, false
	}
}

// intersectIntervals returns the parts of each candidate interval that lie
// inside base.
func intersectIntervals(base geom.Interval, cands []geom.Interval) []geom.Interval {
	var out []geom.Interval
	for _, c := range cands {
		for _, piece := range intersectPair(base, c) {
			if piece.Width() > 1e-12 {
				out = append(out, piece)
			}
		}
	}
	return out
}

// intersectPair intersects two circular intervals, yielding 0–2 pieces.
func intersectPair(a, b geom.Interval) []geom.Interval {
	if a.Width() >= 2*math.Pi-geom.Eps {
		return []geom.Interval{b}
	}
	if b.Width() >= 2*math.Pi-geom.Eps {
		return []geom.Interval{a}
	}
	var out []geom.Interval
	// Unroll b into the linear frame of a (a.Lo ∈ [0,2π), a.Hi ≤ a.Lo+2π).
	for _, shift := range []float64{-2 * math.Pi, 0, 2 * math.Pi} {
		lo := math.Max(a.Lo, b.Lo+shift)
		hi := math.Min(a.Hi, b.Hi+shift)
		if hi > lo+1e-12 {
			out = append(out, geom.Interval{Lo: lo, Hi: hi})
		}
	}
	return out
}

// subtractIntervals removes the given intervals from base, returning the
// remaining pieces.
func subtractIntervals(base geom.Interval, remove []geom.Interval) []geom.Interval {
	pieces := []geom.Interval{base}
	for _, r := range remove {
		var next []geom.Interval
		for _, p := range pieces {
			next = append(next, subtractPair(p, r)...)
		}
		pieces = next
	}
	return pieces
}

func subtractPair(a, b geom.Interval) []geom.Interval {
	inter := intersectPair(a, b)
	if len(inter) == 0 {
		return []geom.Interval{a}
	}
	// Collect the kept sub-pieces of a by cutting out each intersection.
	pieces := []geom.Interval{a}
	for _, cut := range inter {
		var next []geom.Interval
		for _, p := range pieces {
			if cut.Hi <= p.Lo+1e-12 || cut.Lo >= p.Hi-1e-12 {
				next = append(next, p)
				continue
			}
			if cut.Lo > p.Lo+1e-12 {
				next = append(next, geom.Interval{Lo: p.Lo, Hi: cut.Lo})
			}
			if cut.Hi < p.Hi-1e-12 {
				next = append(next, geom.Interval{Lo: cut.Hi, Hi: p.Hi})
			}
		}
		pieces = next
	}
	return pieces
}

// CountCells returns the total number of feasible geometric areas of all
// devices for charger type q — the quantity bounded by Lemma 4.4.
func CountCells(sc *model.Scenario, q int, eps1 float64) int {
	n := 0
	for j := range sc.Devices {
		n += len(DeviceCells(sc, q, j, eps1))
	}
	return n
}

// Lemma44Bound evaluates the paper's O-bound on the number of feasible
// geometric areas per charger type, O(No²·ε₁⁻²·Nh²·c²), with all constants
// set to 1 — useful only for scaling comparisons in tests and benches.
func Lemma44Bound(sc *model.Scenario, eps1 float64) float64 {
	no := float64(len(sc.Devices))
	nh := math.Max(1, float64(len(sc.Obstacles)))
	c := 1.0
	for _, o := range sc.Obstacles {
		c = math.Max(c, float64(len(o.Shape.Vertices)))
	}
	if eps1 <= 0 {
		// The bound diverges as ε₁ → 0; an invalid parameter means "no bound".
		return math.Inf(1)
	}
	return no * no / (eps1 * eps1) * nh * nh * c * c
}

// Area returns the cell's exact area: closed-form for full cells, and the
// radial integral ∫ ½((min(R1, ρ(θ)))² − R0²)⁺ dθ over the arc for partial
// cells (prof supplies ρ).
func (c *Cell) Area(prof *radial.Profile) float64 {
	if !c.Partial {
		return c.Arc.Width() / 2 * (c.R1*c.R1 - c.R0*c.R0)
	}
	return prof.FeasibleArea(c.Arc.Lo, c.Arc.Hi, c.R0, c.R1)
}

// TotalArea sums the areas of all feasible cells of device j under charger
// type q — by construction this equals the exact feasible placement area of
// radial.FeasibleAreaForDevice.
func TotalArea(sc *model.Scenario, q, j int, eps1 float64) float64 {
	prof := radial.NewProfile(sc, sc.Devices[j].Pos)
	total := 0.0
	for _, c := range DeviceCells(sc, q, j, eps1) {
		total += c.Area(prof)
	}
	return total
}
