package cells

import (
	"math"
	"math/rand"
	"testing"

	"hipo/internal/discretize"
	"hipo/internal/geom"
	"hipo/internal/model"
	"hipo/internal/power"
	"hipo/internal/radial"
)

func cellScenario(obs ...model.Obstacle) *model.Scenario {
	return &model.Scenario{
		Region: model.Region{Min: geom.V(0, 0), Max: geom.V(40, 40)},
		ChargerTypes: []model.ChargerType{
			{Name: "c", Alpha: math.Pi / 2, DMin: 2, DMax: 10, Count: 1},
		},
		DeviceTypes: []model.DeviceType{{Name: "d", Alpha: math.Pi, PTh: 0.05}},
		Power:       [][]model.PowerParams{{{A: 100, B: 40}}},
		Devices: []model.Device{
			{Pos: geom.V(20, 20), Orient: 0, Type: 0},
		},
		Obstacles: obs,
	}
}

func TestDeviceCellsNoObstacles(t *testing.T) {
	sc := cellScenario()
	eps1 := 0.3
	cs := DeviceCells(sc, 0, 0, eps1)
	nBands := len(discretize.Radii(sc, 0, 0, eps1)) - 1
	// Without obstacles: one full cell per band, arc = receiving interval.
	if len(cs) != nBands {
		t.Fatalf("cells = %d, want %d", len(cs), nBands)
	}
	for _, c := range cs {
		if c.Partial {
			t.Error("no obstacles should produce no partial cells")
		}
		if math.Abs(c.Arc.Width()-math.Pi) > 1e-9 {
			t.Errorf("arc width = %v, want π", c.Arc.Width())
		}
		if c.Power <= 0 {
			t.Error("cell power must be positive")
		}
	}
	// Bands tile [DMin, DMax].
	if math.Abs(cs[0].R0-2) > 1e-9 || math.Abs(cs[len(cs)-1].R1-10) > 1e-9 {
		t.Errorf("band range [%v, %v]", cs[0].R0, cs[len(cs)-1].R1)
	}
}

func TestDeviceCellsWithObstacle(t *testing.T) {
	// A wall inside the receiving half (device faces +x): cells must split
	// around its shadow.
	sc := cellScenario(model.Obstacle{Shape: geom.Rect(24, 18, 26, 22)})
	cs := DeviceCells(sc, 0, 0, 0.3)
	clear := DeviceCells(cellScenario(), 0, 0, 0.3)
	if len(cs) <= len(clear) {
		t.Errorf("obstacle should create more cells: %d vs %d", len(cs), len(clear))
	}
	foundPartial := false
	for _, c := range cs {
		if c.Partial {
			foundPartial = true
		}
	}
	if !foundPartial {
		t.Error("wall crossing a band should yield partial cells")
	}
}

// Property: feasible points are covered by exactly the cell matching their
// band and angle; infeasible points (blocked, out of range, out of sector)
// are in no cell.
func TestCellsPartitionFeasibleSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	sc := cellScenario(
		model.Obstacle{Shape: geom.Rect(24, 18, 26, 22)},
		model.Obstacle{Shape: geom.Poly(geom.V(22, 24), geom.V(25, 26), geom.V(21, 28))},
	)
	eps1 := 0.3
	cs := DeviceCells(sc, 0, 0, eps1)
	dev := sc.Devices[0]
	prof := radial.NewProfile(sc, dev.Pos)
	recv := geom.SectorRing{
		Apex: dev.Pos, Orient: dev.Orient,
		Alpha: sc.DeviceTypes[0].Alpha,
		RMin:  sc.ChargerTypes[0].DMin, RMax: sc.ChargerTypes[0].DMax,
	}
	for probe := 0; probe < 5000; probe++ {
		p := geom.V(rng.Float64()*40, rng.Float64()*40)
		feasible := recv.Contains(p) && sc.LineOfSight(p, dev.Pos) && sc.FeasiblePosition(p)
		// Skip points numerically near any cell boundary.
		if nearBoundary(sc, dev.Pos, p, cs) {
			continue
		}
		n := 0
		for i := range cs {
			if cs[i].Contains(dev.Pos, prof, p) {
				n++
			}
		}
		if feasible && n != 1 {
			t.Fatalf("feasible point %v in %d cells, want 1", p, n)
		}
		if !feasible && n != 0 {
			t.Fatalf("infeasible point %v in %d cells, want 0", p, n)
		}
	}
}

func nearBoundary(sc *model.Scenario, dev, p geom.Vec, cs []Cell) bool {
	const tol = 1e-3
	delta := p.Sub(dev)
	r := delta.Len()
	theta := delta.Angle()
	for i := range cs {
		if math.Abs(r-cs[i].R0) < tol || math.Abs(r-cs[i].R1) < tol {
			return true
		}
		if geom.AbsAngleDiff(theta, cs[i].Arc.Lo) < tol || geom.AbsAngleDiff(theta, cs[i].Arc.Hi) < tol {
			return true
		}
	}
	// Near any obstacle edge or the occlusion profile itself.
	for _, o := range sc.Obstacles {
		for _, e := range o.Shape.Edges() {
			if e.DistToPoint(p) < tol {
				return true
			}
			// Near the shadow boundary: the ray dev→p grazes an edge.
			if e.DistToPoint(dev) < tol {
				return true
			}
		}
		for _, v := range o.Shape.Vertices {
			if geom.AbsAngleDiff(theta, v.Sub(dev).Angle()) < tol {
				return true
			}
		}
	}
	return false
}

// Property: approximated power of the containing cell matches the
// piecewise-constant approximation at the point's distance.
func TestCellPowerMatchesApprox(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	sc := cellScenario(model.Obstacle{Shape: geom.Rect(24, 18, 26, 22)})
	eps1 := 0.3
	cs := DeviceCells(sc, 0, 0, eps1)
	dev := sc.Devices[0]
	prof := radial.NewProfile(sc, dev.Pos)
	pp := sc.Power[0][0]
	lv := power.NewLevels(pp.A, pp.B, 2, 10, eps1)
	checked := 0
	for probe := 0; probe < 3000 && checked < 300; probe++ {
		p := geom.V(rng.Float64()*40, rng.Float64()*40)
		for i := range cs {
			if cs[i].Contains(dev.Pos, prof, p) {
				d := p.Dist(dev.Pos)
				if math.Abs(lv.Approx(d)-cs[i].Power) > 1e-12 {
					t.Fatalf("cell power %v != approx %v at d=%v", cs[i].Power, lv.Approx(d), d)
				}
				checked++
				break
			}
		}
	}
	if checked < 100 {
		t.Fatalf("too few points landed in cells: %d", checked)
	}
}

func TestCountCellsWithinLemma44Scaling(t *testing.T) {
	sc := cellScenario(model.Obstacle{Shape: geom.Rect(24, 18, 26, 22)})
	eps1 := 0.3
	n := CountCells(sc, 0, eps1)
	if n == 0 {
		t.Fatal("no cells")
	}
	// The empirical count must sit far below the Lemma 4.4 bound (which is
	// a worst-case over all devices and obstacles).
	if bound := Lemma44Bound(sc, eps1); float64(n) > bound {
		t.Errorf("cell count %d exceeds Lemma 4.4 bound %v", n, bound)
	}
	// Finer eps1 cannot reduce the cell count.
	n2 := CountCells(sc, 0, 0.1)
	if n2 < n {
		t.Errorf("finer eps1 reduced cells: %d -> %d", n, n2)
	}
}

func TestOmnidirectionalReceiver(t *testing.T) {
	sc := cellScenario()
	sc.DeviceTypes[0].Alpha = 2 * math.Pi
	cs := DeviceCells(sc, 0, 0, 0.3)
	for _, c := range cs {
		if c.Arc.Width() < 2*math.Pi-1e-9 {
			t.Errorf("omnidirectional receiver arc = %v", c.Arc.Width())
		}
	}
}

func TestClipSegmentToDisk(t *testing.T) {
	disk := geom.Circle{C: geom.V(0, 0), R: 5}
	// Fully inside.
	if s, ok := clipSegmentToDisk(geom.Seg(geom.V(-1, 0), geom.V(1, 0)), disk); !ok || s.Len() != 2 {
		t.Error("inside segment should clip to itself")
	}
	// Crossing: clipped to a chord.
	s, ok := clipSegmentToDisk(geom.Seg(geom.V(-10, 0), geom.V(10, 0)), disk)
	if !ok || math.Abs(s.Len()-10) > 1e-9 {
		t.Errorf("crossing clip = %v, %v", s, ok)
	}
	// Outside entirely.
	if _, ok := clipSegmentToDisk(geom.Seg(geom.V(-10, 7), geom.V(10, 7)), disk); ok {
		t.Error("outside segment should not clip")
	}
	// One endpoint inside.
	s, ok = clipSegmentToDisk(geom.Seg(geom.V(0, 0), geom.V(10, 0)), disk)
	if !ok || math.Abs(s.Len()-5) > 1e-9 {
		t.Errorf("half clip = %v, %v", s, ok)
	}
}

// Property: the cell decomposition tiles the feasible region exactly — the
// summed cell areas equal the analytic feasible-area integral of
// internal/radial, with and without obstacles.
func TestCellAreasSumToFeasibleArea(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	for trial := 0; trial < 8; trial++ {
		var obs []model.Obstacle
		for k := 0; k < rng.Intn(3); k++ {
			c := geom.V(14+rng.Float64()*14, 12+rng.Float64()*14)
			obs = append(obs, model.Obstacle{
				Shape: geom.RandomSimplePolygon(rng, c, 0.8, 2.5, 3+rng.Intn(5)),
			})
		}
		sc := cellScenario(obs...)
		sc.Devices[0].Orient = rng.Float64() * 2 * math.Pi
		if !sc.FeasiblePosition(sc.Devices[0].Pos) {
			continue
		}
		cellSum := TotalArea(sc, 0, 0, 0.3)
		analytic := radial.FeasibleAreaForDevice(sc, 0, 0)
		// The analytic integral's panels are bounded by obstacle-vertex
		// events, but the min(R1, ρ) kink where ρ crosses a band radius
		// falls inside a panel, so Simpson carries an O(h²) error there;
		// the cell sum integrates each smooth piece separately and is the
		// more accurate of the two. Agreement to 0.2% validates both.
		tol := 2e-3 * math.Max(1, analytic)
		if math.Abs(cellSum-analytic) > tol {
			t.Fatalf("trial %d: cell areas %v != analytic %v", trial, cellSum, analytic)
		}
	}
}
