package deploycost

import (
	"math"

	"hipo/internal/core"
	"hipo/internal/geom"
	"hipo/internal/model"
	"hipo/internal/pdcs"
	"hipo/internal/submodular"
)

// CostModel is the deployment-cost function of Section 8.2,
// c(S) = Σ f_d(d_i) + f_θ(θ_i) + f_P(P_i): monotone increasing functions of
// travel distance from the depot, rotation angle from a reference
// orientation, and working charging power of the charger type.
type CostModel struct {
	Depot geom.Vec
	// RefOrient is the orientation chargers leave the depot with.
	RefOrient float64
	// FD, FTheta, FP are the three monotone cost curves. Nil means zero.
	FD     func(d float64) float64
	FTheta func(theta float64) float64
	FP     func(p float64) float64
	// TypePower[q] is the working power P_i of charger type q fed to FP.
	TypePower []float64
}

// LinearCostModel builds the common linear instantiation: cost =
// wd·distance + wt·rotation + wp·power.
func LinearCostModel(depot geom.Vec, wd, wt, wp float64, typePower []float64) CostModel {
	return CostModel{
		Depot:     depot,
		FD:        func(d float64) float64 { return wd * d },
		FTheta:    func(th float64) float64 { return wt * th },
		FP:        func(p float64) float64 { return wp * p },
		TypePower: typePower,
	}
}

// StrategyCost returns the deployment cost of a single strategy.
func (cm CostModel) StrategyCost(s model.Strategy) float64 {
	c := 0.0
	if cm.FD != nil {
		c += cm.FD(cm.Depot.Dist(s.Pos))
	}
	if cm.FTheta != nil {
		c += cm.FTheta(geom.AbsAngleDiff(cm.RefOrient, s.Orient))
	}
	if cm.FP != nil {
		p := 0.0
		if s.Type < len(cm.TypePower) {
			p = cm.TypePower[s.Type]
		}
		c += cm.FP(p)
	}
	return c
}

// PlacementCost returns the straight per-charger cost sum of a placement.
func (cm CostModel) PlacementCost(placed []model.Strategy) float64 {
	total := 0.0
	for _, s := range placed {
		total += cm.StrategyCost(s)
	}
	return total
}

// TourCost estimates the travel component as a single cart tour from the
// depot through all placements (the m=1 TSP formulation the paper
// mentions), plus the rotation and power components per charger.
func (cm CostModel) TourCost(placed []model.Strategy) float64 {
	pts := make([]geom.Vec, len(placed))
	for i, s := range placed {
		pts[i] = s.Pos
	}
	_, length := Tour(cm.Depot, pts)
	total := 0.0
	if cm.FD != nil {
		total += cm.FD(length)
	}
	for _, s := range placed {
		if cm.FTheta != nil {
			total += cm.FTheta(geom.AbsAngleDiff(cm.RefOrient, s.Orient))
		}
		if cm.FP != nil && s.Type < len(cm.TypePower) {
			total += cm.FP(cm.TypePower[s.Type])
		}
	}
	return total
}

// Result is a budget-constrained placement.
type Result struct {
	Placed  []model.Strategy
	Utility float64 // objective value (normalized charging utility)
	Cost    float64 // per-charger deployment cost spent
}

// SolveBudgeted maximizes charging utility subject to c(S) ≤ budget: PDCS
// extraction exactly as in the unconstrained solver, then the cost-benefit
// greedy of internal/submodular (the practical stand-in for the
// routing-constrained algorithm of the paper's reference [46], which
// achieves ½(1−1/e)). Per-type cardinalities become soft under the budget:
// the budget is the binding constraint, matching the formulation in
// Section 8.2.
func SolveBudgeted(sc *model.Scenario, cm CostModel, budget float64, opt core.Options) (*Result, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	cands := core.ExtractCandidates(sc, opt)
	inst, flat := core.BuildInstance(sc, cands, opt)
	cost := make([]float64, len(flat))
	for i, c := range flat {
		cost[i] = cm.StrategyCost(c.S)
	}
	res := submodular.BudgetedGreedy(inst, cost, budget)
	out := &Result{}
	for _, e := range res.Selected {
		out.Placed = append(out.Placed, flat[e].S)
		out.Cost += cost[e]
	}
	out.Utility = res.Value
	return out, nil
}

// CheapestFeasible returns the minimum budget at which any strategy is
// affordable, useful for sweeping budgets in experiments.
func CheapestFeasible(cands [][]pdcs.Candidate, cm CostModel) float64 {
	best := math.Inf(1)
	for _, group := range cands {
		for _, c := range group {
			if v := cm.StrategyCost(c.S); v < best {
				best = v
			}
		}
	}
	return best
}
