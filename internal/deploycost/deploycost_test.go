package deploycost

import (
	"math"
	"math/rand"
	"testing"

	"hipo/internal/core"
	"hipo/internal/geom"
	"hipo/internal/model"
)

func TestTourLength(t *testing.T) {
	depot := geom.V(0, 0)
	pts := []geom.Vec{geom.V(3, 0), geom.V(3, 4)}
	// 0→(3,0): 3; →(3,4): 4; →0: 5. Total 12.
	if got := TourLength(depot, pts); math.Abs(got-12) > 1e-12 {
		t.Errorf("length = %v, want 12", got)
	}
	if TourLength(depot, nil) != 0 {
		t.Error("empty tour should be free")
	}
}

func TestNearestNeighborTour(t *testing.T) {
	depot := geom.V(0, 0)
	pts := []geom.Vec{geom.V(10, 0), geom.V(1, 0), geom.V(5, 0)}
	order := NearestNeighborTour(depot, pts)
	want := []int{1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestTwoOptFixesCrossing(t *testing.T) {
	depot := geom.V(0, 0)
	// Square corners visited in a crossing order.
	pts := []geom.Vec{geom.V(0, 10), geom.V(10, 0), geom.V(10, 10)}
	bad := []int{2, 1, 0} // depot→(10,10)→(10,0)→(0,10)→depot
	badSeq := []geom.Vec{pts[2], pts[1], pts[0]}
	badLen := TourLength(depot, badSeq)
	improved := TwoOpt(depot, pts, append([]int(nil), bad...), 16)
	seq := make([]geom.Vec, len(improved))
	for i, idx := range improved {
		seq[i] = pts[idx]
	}
	if TourLength(depot, seq) > badLen+1e-12 {
		t.Errorf("2-opt worsened the tour: %v > %v", TourLength(depot, seq), badLen)
	}
}

// Property: Tour (NN + 2-opt) is never worse than the raw NN tour and at
// least matches the optimal tour on tiny instances.
func TestTourQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		depot := geom.V(rng.Float64()*10, rng.Float64()*10)
		n := 3 + rng.Intn(4)
		pts := make([]geom.Vec, n)
		for i := range pts {
			pts[i] = geom.V(rng.Float64()*20, rng.Float64()*20)
		}
		_, length := Tour(depot, pts)
		opt := bruteTour(depot, pts)
		if length < opt-1e-9 {
			t.Fatalf("tour %v shorter than optimal %v?!", length, opt)
		}
		if length > opt*1.5+1e-9 {
			t.Fatalf("tour %v much worse than optimal %v", length, opt)
		}
	}
}

func bruteTour(depot geom.Vec, pts []geom.Vec) float64 {
	n := len(pts)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := math.Inf(1)
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			seq := make([]geom.Vec, n)
			for i, idx := range perm {
				seq[i] = pts[idx]
			}
			if l := TourLength(depot, seq); l < best {
				best = l
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return best
}

func costScenario() *model.Scenario {
	return &model.Scenario{
		Region: model.Region{Min: geom.V(0, 0), Max: geom.V(30, 30)},
		ChargerTypes: []model.ChargerType{
			{Name: "c1", Alpha: math.Pi / 2, DMin: 2, DMax: 8, Count: 3},
		},
		DeviceTypes: []model.DeviceType{
			{Name: "d1", Alpha: math.Pi, PTh: 0.05},
		},
		Power: [][]model.PowerParams{{{A: 100, B: 40}}},
		Devices: []model.Device{
			{Pos: geom.V(10, 10), Orient: 0, Type: 0},
			{Pos: geom.V(20, 20), Orient: math.Pi, Type: 0},
			{Pos: geom.V(10, 20), Orient: -math.Pi / 2, Type: 0},
		},
	}
}

func TestStrategyCost(t *testing.T) {
	cm := LinearCostModel(geom.V(0, 0), 1, 2, 3, []float64{5})
	s := model.Strategy{Pos: geom.V(3, 4), Orient: math.Pi, Type: 0}
	want := 5.0 + 2*math.Pi + 3*5
	if got := cm.StrategyCost(s); math.Abs(got-want) > 1e-12 {
		t.Errorf("cost = %v, want %v", got, want)
	}
	// Nil curves cost nothing.
	empty := CostModel{Depot: geom.V(0, 0)}
	if empty.StrategyCost(s) != 0 {
		t.Error("nil cost curves should be free")
	}
}

func TestSolveBudgetedRespectsBudget(t *testing.T) {
	sc := costScenario()
	cm := LinearCostModel(geom.V(0, 0), 1, 0.5, 0, nil)
	budgets := []float64{10, 30, 100}
	prev := -1.0
	for _, b := range budgets {
		res, err := SolveBudgeted(sc, cm, b, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if res.Cost > b+1e-9 {
			t.Fatalf("budget %v exceeded: %v", b, res.Cost)
		}
		if res.Utility < prev-1e-9 {
			t.Fatalf("utility decreased with larger budget: %v < %v", res.Utility, prev)
		}
		prev = res.Utility
	}
}

func TestSolveBudgetedZeroBudget(t *testing.T) {
	sc := costScenario()
	cm := LinearCostModel(geom.V(0, 0), 1, 1, 1, []float64{1})
	res, err := SolveBudgeted(sc, cm, 0, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Placed) != 0 || res.Utility != 0 {
		t.Errorf("zero budget placed %d with utility %v", len(res.Placed), res.Utility)
	}
}

func TestTourCostAndPlacementCost(t *testing.T) {
	cm := LinearCostModel(geom.V(0, 0), 1, 0, 0, nil)
	placed := []model.Strategy{
		{Pos: geom.V(3, 0), Type: 0},
		{Pos: geom.V(3, 4), Type: 0},
	}
	// Tour: 3+4+5 = 12; per-charger radial sum: 3+5 = 8.
	if got := cm.TourCost(placed); math.Abs(got-12) > 1e-9 {
		t.Errorf("tour cost = %v, want 12", got)
	}
	if got := cm.PlacementCost(placed); math.Abs(got-8) > 1e-9 {
		t.Errorf("placement cost = %v, want 8", got)
	}
}

func TestCheapestFeasible(t *testing.T) {
	sc := costScenario()
	cm := LinearCostModel(geom.V(10, 10), 1, 0, 0, nil)
	cands := core.ExtractCandidates(sc, core.DefaultOptions())
	cheapest := CheapestFeasible(cands, cm)
	if math.IsInf(cheapest, 1) {
		t.Fatal("no candidates found")
	}
	// The cheapest candidate is at least DMin away from the nearest device
	// circle... it just must be a nonnegative finite number.
	if cheapest < 0 {
		t.Errorf("cheapest = %v", cheapest)
	}
}
