// Package deploycost implements the deployment-cost extension of Section
// 8.2: a cost model combining travel distance, rotation, and working power,
// a TSP tour builder (nearest-neighbor construction plus 2-opt improvement)
// for estimating the travel component when chargers are carted from a base
// station, and budget-constrained placement via the cost-benefit greedy.
package deploycost

import "hipo/internal/geom"

// TourLength returns the length of the closed tour visiting pts in order,
// starting and ending at depot.
func TourLength(depot geom.Vec, pts []geom.Vec) float64 {
	if len(pts) == 0 {
		return 0
	}
	total := depot.Dist(pts[0])
	for i := 1; i < len(pts); i++ {
		total += pts[i-1].Dist(pts[i])
	}
	total += pts[len(pts)-1].Dist(depot)
	return total
}

// NearestNeighborTour orders pts by the nearest-neighbor heuristic starting
// from depot and returns the visiting order as indices into pts.
func NearestNeighborTour(depot geom.Vec, pts []geom.Vec) []int {
	n := len(pts)
	order := make([]int, 0, n)
	visited := make([]bool, n)
	cur := depot
	for len(order) < n {
		best, bestD := -1, 0.0
		for i := 0; i < n; i++ {
			if visited[i] {
				continue
			}
			d := cur.Dist(pts[i])
			if best < 0 || d < bestD {
				best, bestD = i, d
			}
		}
		visited[best] = true
		order = append(order, best)
		cur = pts[best]
	}
	return order
}

// TwoOpt improves a tour order in place using 2-opt moves until no
// improving move remains (or maxPasses passes complete). The tour is closed
// through the depot.
func TwoOpt(depot geom.Vec, pts []geom.Vec, order []int, maxPasses int) []int {
	n := len(order)
	if n < 3 {
		return order
	}
	at := func(i int) geom.Vec {
		if i < 0 || i >= n {
			return depot
		}
		return pts[order[i]]
	}
	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for i := -1; i < n-2; i++ {
			for j := i + 1; j < n-1; j++ {
				// Replace edges (i, i+1) and (j, j+1) with (i, j), (i+1, j+1).
				a, b := at(i), at(i+1)
				c, d := at(j), at(j+1)
				delta := a.Dist(c) + b.Dist(d) - a.Dist(b) - c.Dist(d)
				if delta < -geom.Eps {
					// Reverse the segment order[i+1..j].
					for lo, hi := i+1, j; lo < hi; lo, hi = lo+1, hi-1 {
						order[lo], order[hi] = order[hi], order[lo]
					}
					improved = true
				}
			}
		}
		if !improved {
			break
		}
	}
	return order
}

// Tour builds a travel tour over pts from depot: nearest neighbor followed
// by 2-opt. Returns the visiting order and the tour length.
func Tour(depot geom.Vec, pts []geom.Vec) ([]int, float64) {
	order := NearestNeighborTour(depot, pts)
	order = TwoOpt(depot, pts, order, 32)
	seq := make([]geom.Vec, len(order))
	for i, idx := range order {
		seq[i] = pts[idx]
	}
	return order, TourLength(depot, seq)
}
