package fairness

import (
	"math"
	"math/rand"

	"hipo/internal/core"
	"hipo/internal/model"
)

// ACOOptions tunes the ant-colony search for max-min fairness (Section 8.3
// lists Ant Colony Optimization among the applicable heuristics).
type ACOOptions struct {
	Ants        int     // ants per iteration (default 12)
	Iterations  int     // colony iterations (default 60)
	Evaporation float64 // pheromone evaporation rate ρ ∈ (0,1) (default 0.3)
	Alpha       float64 // pheromone exponent (default 1)
	Beta        float64 // heuristic exponent (default 2)
	Seed        int64
}

// DefaultACOOptions returns standard MAX-MIN-ish colony parameters sized
// for the paper's scenario scales.
func DefaultACOOptions() ACOOptions {
	return ACOOptions{Ants: 12, Iterations: 60, Evaporation: 0.3, Alpha: 1, Beta: 2, Seed: 1}
}

// MaxMinACO maximizes the minimum device utility with an ant colony over
// the PDCS candidate strategy set: each charger slot is a decision point
// whose alternatives are the same-type candidates; pheromone accumulates on
// (slot, candidate) pairs proportional to the max-min objective of the best
// ant per iteration. The heuristic visibility of a candidate is its total
// delivered power, which biases ants toward useful strategies before
// pheromone differentiates.
func MaxMinACO(sc *model.Scenario, opt core.Options, aco ACOOptions) ([]model.Strategy, float64, error) {
	cands := core.ExtractCandidates(sc, opt)
	if aco.Ants <= 0 {
		aco = DefaultACOOptions()
	}
	rng := rand.New(rand.NewSource(aco.Seed))

	// Slots: one per charger, listing its charger type.
	var slotType []int
	for q, ct := range sc.ChargerTypes {
		if len(cands[q]) == 0 {
			continue // no candidate of this type: slot cannot be filled
		}
		for k := 0; k < ct.Count; k++ {
			slotType = append(slotType, q)
		}
	}
	if len(slotType) == 0 {
		return nil, 0, nil
	}

	// Pheromone and heuristic per (slot, candidate-of-that-type).
	tau := make([][]float64, len(slotType))
	eta := make([][]float64, len(slotType))
	for s, q := range slotType {
		tau[s] = make([]float64, len(cands[q]))
		eta[s] = make([]float64, len(cands[q]))
		for c := range cands[q] {
			tau[s][c] = 1
			eta[s][c] = cands[q][c].TotalPower() + 1e-9
		}
	}

	pick := func(s int) int {
		q := slotType[s]
		weights := make([]float64, len(cands[q]))
		total := 0.0
		for c := range weights {
			w := math.Pow(tau[s][c], aco.Alpha) * math.Pow(eta[s][c], aco.Beta)
			weights[c] = w
			total += w
		}
		r := rng.Float64() * total
		for c, w := range weights {
			r -= w
			if r <= 0 {
				return c
			}
		}
		return len(weights) - 1
	}

	assemble := func(choice []int) []model.Strategy {
		out := make([]model.Strategy, len(choice))
		for s, c := range choice {
			out[s] = cands[slotType[s]][c].S
		}
		return out
	}

	var bestChoice []int
	bestVal := math.Inf(-1)
	for it := 0; it < aco.Iterations; it++ {
		var iterBest []int
		iterVal := math.Inf(-1)
		for a := 0; a < aco.Ants; a++ {
			choice := make([]int, len(slotType))
			for s := range choice {
				choice[s] = pick(s)
			}
			v := maxMinObjective(sc, assemble(choice))
			if v > iterVal {
				iterVal, iterBest = v, choice
			}
		}
		if iterVal > bestVal {
			bestVal = iterVal
			bestChoice = append(bestChoice[:0:0], iterBest...)
		}
		// Evaporate, then deposit on the global best trail (elitist rule).
		for s := range tau {
			for c := range tau[s] {
				tau[s][c] *= 1 - aco.Evaporation
				if tau[s][c] < 1e-6 {
					tau[s][c] = 1e-6
				}
			}
		}
		for s, c := range bestChoice {
			tau[s][c] += bestVal + 1e-3
		}
	}
	placed := assemble(bestChoice)
	return placed, MinUtility(sc, placed), nil
}
