package fairness

import (
	"math"
	"testing"

	"hipo/internal/core"
	"hipo/internal/geom"
	"hipo/internal/model"
	"hipo/internal/power"
)

func fairScenario() *model.Scenario {
	return &model.Scenario{
		Region: model.Region{Min: geom.V(0, 0), Max: geom.V(30, 30)},
		ChargerTypes: []model.ChargerType{
			{Name: "c1", Alpha: math.Pi / 2, DMin: 2, DMax: 8, Count: 2},
		},
		DeviceTypes: []model.DeviceType{
			{Name: "d1", Alpha: math.Pi, PTh: 0.05},
		},
		Power: [][]model.PowerParams{{{A: 100, B: 40}}},
		Devices: []model.Device{
			{Pos: geom.V(8, 8), Orient: 0, Type: 0},
			{Pos: geom.V(12, 8), Orient: math.Pi, Type: 0},
			{Pos: geom.V(20, 22), Orient: math.Pi / 2, Type: 0},
			{Pos: geom.V(22, 18), Orient: math.Pi, Type: 0},
		},
	}
}

func TestMinUtility(t *testing.T) {
	sc := fairScenario()
	if got := MinUtility(sc, nil); got != 0 {
		t.Errorf("empty placement min utility = %v", got)
	}
	empty := &model.Scenario{}
	if got := MinUtility(empty, nil); got != 0 {
		t.Errorf("no devices min utility = %v", got)
	}
}

func TestMaxMinSAImprovesOrMatchesGreedy(t *testing.T) {
	sc := fairScenario()
	opt := core.DefaultOptions()
	greedy, err := core.Solve(sc, opt)
	if err != nil {
		t.Fatal(err)
	}
	greedyMin := MinUtility(sc, greedy.Placed)
	sa := DefaultSAOptions()
	sa.Iterations = 500
	placed, minU, err := MaxMinSA(sc, opt, sa)
	if err != nil {
		t.Fatal(err)
	}
	if len(placed) == 0 {
		t.Fatal("SA placed nothing")
	}
	// SA is seeded with the greedy solution, so it can only improve the
	// max-min objective (up to the tie-breaking epsilon term).
	if minU < greedyMin-1e-9 {
		t.Errorf("SA min utility %v below greedy %v", minU, greedyMin)
	}
	// Verify reported value.
	if math.Abs(minU-MinUtility(sc, placed)) > 1e-12 {
		t.Error("reported min utility mismatch")
	}
}

func TestMaxMinPSO(t *testing.T) {
	sc := fairScenario()
	pso := DefaultPSOOptions()
	pso.Particles = 10
	pso.Iterations = 40
	placed, minU := MaxMinPSO(sc, pso)
	if len(placed) != sc.TotalChargers() {
		t.Fatalf("PSO placed %d, want %d", len(placed), sc.TotalChargers())
	}
	for _, s := range placed {
		if !sc.Region.Contains(s.Pos) {
			t.Errorf("PSO position %v outside region", s.Pos)
		}
	}
	if minU < 0 || minU > 1 {
		t.Errorf("min utility = %v", minU)
	}
}

func TestMaxMinPSOEmptyChargers(t *testing.T) {
	sc := fairScenario()
	sc.ChargerTypes[0].Count = 0
	placed, minU := MaxMinPSO(sc, DefaultPSOOptions())
	if len(placed) != 0 || minU != 0 {
		t.Error("no chargers should yield empty placement")
	}
}

func TestProportionalFair(t *testing.T) {
	sc := fairScenario()
	sol, err := ProportionalFair(sc, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Placed) == 0 {
		t.Fatal("proportional fair placed nothing")
	}
	// Utility is still reported under the standard metric.
	if got := power.TotalUtility(sc, sol.Placed); math.Abs(got-sol.Utility) > 1e-12 {
		t.Error("utility mismatch")
	}
	if sol.Utility <= 0 {
		t.Error("zero utility from proportional fair placement")
	}
}

func TestProportionalFairTendsBalanced(t *testing.T) {
	// With a log objective, covering a second device is worth more than
	// stacking power on an already-saturated one; Jain index should not be
	// lower than the plain greedy's by much. (Weak sanity check.)
	sc := fairScenario()
	plain, err := core.Solve(sc, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	pf, err := ProportionalFair(sc, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	jPlain := JainIndex(power.DeviceUtilities(sc, plain.Placed))
	jPF := JainIndex(power.DeviceUtilities(sc, pf.Placed))
	if jPF < jPlain*0.8 {
		t.Errorf("proportional fair much less balanced: %v vs %v", jPF, jPlain)
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{1, 1, 1}); math.Abs(got-1) > 1e-12 {
		t.Errorf("uniform Jain = %v", got)
	}
	if got := JainIndex([]float64{1, 0, 0}); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("single-winner Jain = %v", got)
	}
	if got := JainIndex(nil); got != 1 {
		t.Errorf("empty Jain = %v", got)
	}
	if got := JainIndex([]float64{0, 0}); got != 1 {
		t.Errorf("all-zero Jain = %v", got)
	}
}

func TestMaxMinACO(t *testing.T) {
	sc := fairScenario()
	aco := DefaultACOOptions()
	aco.Ants = 6
	aco.Iterations = 20
	placed, minU, err := MaxMinACO(sc, core.DefaultOptions(), aco)
	if err != nil {
		t.Fatal(err)
	}
	if len(placed) != sc.TotalChargers() {
		t.Fatalf("ACO placed %d, want %d", len(placed), sc.TotalChargers())
	}
	for _, s := range placed {
		if !sc.FeasiblePosition(s.Pos) {
			t.Errorf("infeasible ACO placement %v", s.Pos)
		}
	}
	if minU < 0 || minU > 1 {
		t.Errorf("min utility = %v", minU)
	}
	if math.Abs(minU-MinUtility(sc, placed)) > 1e-12 {
		t.Error("reported min utility mismatch")
	}
}

func TestMaxMinACONoChargers(t *testing.T) {
	sc := fairScenario()
	sc.ChargerTypes[0].Count = 0
	placed, minU, err := MaxMinACO(sc, core.DefaultOptions(), DefaultACOOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(placed) != 0 || minU != 0 {
		t.Error("no chargers should yield empty placement")
	}
}

func TestHeuristicsComparable(t *testing.T) {
	// The three heuristics should land in the same ballpark on a small
	// instance (no formal guarantee; this is a smoke-level sanity check
	// that none of them collapses to zero when coverage is possible).
	sc := fairScenario()
	opt := core.DefaultOptions()
	sa := DefaultSAOptions()
	sa.Iterations = 300
	saPlaced, _, err := MaxMinSA(sc, opt, sa)
	if err != nil {
		t.Fatal(err)
	}
	aco := DefaultACOOptions()
	aco.Iterations = 20
	acoPlaced, _, err := MaxMinACO(sc, opt, aco)
	if err != nil {
		t.Fatal(err)
	}
	saMean := power.TotalUtility(sc, saPlaced)
	acoMean := power.TotalUtility(sc, acoPlaced)
	if saMean == 0 && acoMean == 0 {
		t.Error("both heuristics produced zero-utility placements")
	}
}
