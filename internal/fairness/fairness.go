// Package fairness implements the charging-utility balancing extensions of
// Section 8.3: max-min fairness (Eq. (15)) solved heuristically — the paper
// notes no efficient approximation exists — by simulated annealing over the
// PDCS candidate set and by particle swarm optimization over continuous
// strategies, plus proportional fairness (Eq. (16)), which stays a monotone
// submodular objective and is therefore solved by the same 1/2 − ε greedy
// as the base problem.
package fairness

import (
	"math"
	"math/rand"

	"hipo/internal/core"
	"hipo/internal/geom"
	"hipo/internal/model"
	"hipo/internal/pdcs"
	"hipo/internal/power"
	"hipo/internal/submodular"
)

// MinUtility returns the minimum device utility of a placement — the
// max-min objective value of Eq. (15).
func MinUtility(sc *model.Scenario, placed []model.Strategy) float64 {
	us := power.DeviceUtilities(sc, placed)
	if len(us) == 0 {
		return 0
	}
	mn := us[0]
	for _, u := range us[1:] {
		if u < mn {
			mn = u
		}
	}
	return mn
}

// maxMinObjective breaks ties on the minimum by mean utility so the search
// has gradient even while the minimum sits at zero.
func maxMinObjective(sc *model.Scenario, placed []model.Strategy) float64 {
	return MinUtility(sc, placed) + 1e-3*power.TotalUtility(sc, placed)
}

// SAOptions tunes the simulated annealing search.
type SAOptions struct {
	Iterations int     // annealing steps (default 2000)
	T0         float64 // initial temperature (default 0.1)
	Cooling    float64 // geometric cooling factor per step (default 0.999)
	Seed       int64
}

// DefaultSAOptions returns sensible defaults for the scenario sizes of the
// paper's simulations.
func DefaultSAOptions() SAOptions {
	return SAOptions{Iterations: 2000, T0: 0.1, Cooling: 0.999, Seed: 1}
}

// MaxMinSA maximizes the minimum device utility by simulated annealing over
// the PDCS candidate strategy set: the state is one candidate per charger
// slot, and a move swaps one slot for a random same-type candidate. The
// greedy HIPO solution seeds the search.
func MaxMinSA(sc *model.Scenario, opt core.Options, sa SAOptions) ([]model.Strategy, float64, error) {
	cands := core.ExtractCandidates(sc, opt)
	sol, err := core.SelectFromCandidates(sc, cands, opt)
	if err != nil {
		return nil, 0, err
	}
	if sa.Iterations <= 0 {
		sa = DefaultSAOptions()
	}
	rng := rand.New(rand.NewSource(sa.Seed))

	// Slots: per charger type, Count entries holding candidate indices (or
	// -1 for empty when there are fewer candidates than slots).
	type slot struct{ q, cand int }
	var slots []slot
	// Seed with the greedy solution by locating each placed strategy among
	// the candidates.
	used := make(map[[2]int]bool)
	for _, s := range sol.Placed {
		for ci, c := range cands[s.Type] {
			if used[[2]int{s.Type, ci}] {
				continue
			}
			if c.S.Pos.Eq(s.Pos) && geom.AbsAngleDiff(c.S.Orient, s.Orient) <= 1e-9 {
				slots = append(slots, slot{s.Type, ci})
				used[[2]int{s.Type, ci}] = true
				break
			}
		}
	}
	// Fill remaining budget with random candidates.
	for q, ct := range sc.ChargerTypes {
		have := 0
		for _, sl := range slots {
			if sl.q == q {
				have++
			}
		}
		for k := have; k < ct.Count && len(cands[q]) > 0; k++ {
			slots = append(slots, slot{q, rng.Intn(len(cands[q]))})
		}
	}
	assemble := func() []model.Strategy {
		out := make([]model.Strategy, len(slots))
		for i, sl := range slots {
			out[i] = cands[sl.q][sl.cand].S
		}
		return out
	}
	cur := assemble()
	curVal := maxMinObjective(sc, cur)
	best := append([]model.Strategy(nil), cur...)
	bestVal := curVal

	temp := sa.T0
	for it := 0; it < sa.Iterations && len(slots) > 0; it++ {
		i := rng.Intn(len(slots))
		q := slots[i].q
		if len(cands[q]) < 2 {
			continue
		}
		old := slots[i].cand
		slots[i].cand = rng.Intn(len(cands[q]))
		nxt := assemble()
		nxtVal := maxMinObjective(sc, nxt)
		if nxtVal >= curVal || rng.Float64() < math.Exp((nxtVal-curVal)/math.Max(temp, 1e-12)) {
			cur, curVal = nxt, nxtVal
			if curVal > bestVal {
				best = append(best[:0:0], cur...)
				bestVal = curVal
			}
		} else {
			slots[i].cand = old
		}
		temp *= sa.Cooling
	}
	return best, MinUtility(sc, best), nil
}

// PSOOptions tunes the particle swarm search.
type PSOOptions struct {
	Particles  int     // swarm size (default 20)
	Iterations int     // velocity updates (default 150)
	Inertia    float64 // w (default 0.7)
	Cognitive  float64 // c1 (default 1.5)
	Social     float64 // c2 (default 1.5)
	Seed       int64
}

// DefaultPSOOptions returns standard PSO coefficients.
func DefaultPSOOptions() PSOOptions {
	return PSOOptions{Particles: 20, Iterations: 150, Inertia: 0.7, Cognitive: 1.5, Social: 1.5, Seed: 1}
}

// MaxMinPSO maximizes the minimum device utility by particle swarm
// optimization over the continuous strategy space: each particle encodes
// (x, y, φ) for every charger slot. Infeasible positions (inside obstacles)
// are clamped by resampling. Returns the best placement found.
func MaxMinPSO(sc *model.Scenario, pso PSOOptions) ([]model.Strategy, float64) {
	if pso.Particles <= 0 {
		pso = DefaultPSOOptions()
	}
	rng := rand.New(rand.NewSource(pso.Seed))

	// Slot layout: one (x, y, phi) triple per charger.
	var types []int
	for q, ct := range sc.ChargerTypes {
		for k := 0; k < ct.Count; k++ {
			types = append(types, q)
		}
	}
	dim := len(types) * 3
	if dim == 0 {
		return nil, 0
	}
	lo := []float64{sc.Region.Min.X, sc.Region.Min.Y, 0}
	hi := []float64{sc.Region.Max.X, sc.Region.Max.Y, 2 * math.Pi}

	decode := func(x []float64) []model.Strategy {
		out := make([]model.Strategy, len(types))
		for i, q := range types {
			out[i] = model.Strategy{
				Pos:    geom.V(x[3*i], x[3*i+1]),
				Orient: geom.NormAngle(x[3*i+2]),
				Type:   q,
			}
		}
		return out
	}
	evaluate := func(x []float64) float64 {
		placed := decode(x)
		for _, s := range placed {
			if !sc.FeasiblePosition(s.Pos) {
				return -1 // hard penalty
			}
		}
		return maxMinObjective(sc, placed)
	}
	sample := func() []float64 {
		x := make([]float64, dim)
		for i := 0; i < len(types); i++ {
			for {
				px := lo[0] + rng.Float64()*(hi[0]-lo[0])
				py := lo[1] + rng.Float64()*(hi[1]-lo[1])
				if sc.FeasiblePosition(geom.V(px, py)) {
					x[3*i], x[3*i+1] = px, py
					break
				}
			}
			x[3*i+2] = rng.Float64() * 2 * math.Pi
		}
		return x
	}

	pos := make([][]float64, pso.Particles)
	vel := make([][]float64, pso.Particles)
	pbest := make([][]float64, pso.Particles)
	pbestVal := make([]float64, pso.Particles)
	var gbest []float64
	gbestVal := math.Inf(-1)
	for p := range pos {
		pos[p] = sample()
		vel[p] = make([]float64, dim)
		pbest[p] = append([]float64(nil), pos[p]...)
		pbestVal[p] = evaluate(pos[p])
		if pbestVal[p] > gbestVal {
			gbestVal = pbestVal[p]
			gbest = append([]float64(nil), pos[p]...)
		}
	}
	for it := 0; it < pso.Iterations; it++ {
		for p := range pos {
			for d := 0; d < dim; d++ {
				r1, r2 := rng.Float64(), rng.Float64()
				vel[p][d] = pso.Inertia*vel[p][d] +
					pso.Cognitive*r1*(pbest[p][d]-pos[p][d]) +
					pso.Social*r2*(gbest[d]-pos[p][d])
				pos[p][d] += vel[p][d]
			}
			// Clamp coordinates into the region box.
			for i := 0; i < len(types); i++ {
				pos[p][3*i] = clamp(pos[p][3*i], lo[0], hi[0])
				pos[p][3*i+1] = clamp(pos[p][3*i+1], lo[1], hi[1])
			}
			v := evaluate(pos[p])
			if v > pbestVal[p] {
				pbestVal[p] = v
				copy(pbest[p], pos[p])
				if v > gbestVal {
					gbestVal = v
					copy(gbest, pos[p])
				}
			}
		}
	}
	placed := decode(gbest)
	return placed, MinUtility(sc, placed)
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// ProportionalFair solves the proportional-fairness HIPO of Eq. (16):
// maximize Σ log(1 + U_j) — still monotone submodular after PDCS extraction
// (the paper's observation), so the standard greedy applies with the same
// 1/2 − ε guarantee.
func ProportionalFair(sc *model.Scenario, opt core.Options) (*core.Solution, error) {
	opt.Objective = func(sc *model.Scenario, j int) submodular.Scalar {
		return submodular.LogUtilityPhi(sc.DeviceTypes[sc.Devices[j].Type].PTh)
	}
	return core.Solve(sc, opt)
}

// JainIndex returns Jain's fairness index of the per-device utilities:
// (Σu)² / (n·Σu²), 1 when perfectly balanced. Used by fairness benchmarks.
func JainIndex(us []float64) float64 {
	if len(us) == 0 {
		return 1
	}
	sum, sq := 0.0, 0.0
	for _, u := range us {
		sum += u
		sq += u * u
	}
	if sq <= 0 {
		return 1
	}
	return sum * sum / (float64(len(us)) * sq)
}

// Candidates re-exports the candidate extraction used by the SA seed, so
// experiment code can introspect candidate counts without re-running.
func Candidates(sc *model.Scenario, opt core.Options) [][]pdcs.Candidate {
	return core.ExtractCandidates(sc, opt)
}
