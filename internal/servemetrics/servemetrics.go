// Package servemetrics is a dependency-free metrics registry for
// cmd/hiposerve: atomic counters, gauges backed by callbacks, and
// fixed-bucket latency histograms, rendered in the Prometheus text
// exposition format at /metrics. It implements just the subset of the
// format the server needs — counter, gauge, and histogram families with
// optional constant labels — so the repo stays stdlib-only.
//
//hipo:allow-wallclock latency accounting is the metrics registry's purpose
package servemetrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// DefBuckets are the default latency buckets in seconds, spanning the
// sub-millisecond cache-hit path through multi-minute async solves.
var DefBuckets = []float64{.001, .005, .01, .05, .1, .5, 1, 5, 10, 30, 60, 120}

// Histogram is a fixed-bucket cumulative histogram with atomic updates.
type Histogram struct {
	bounds []float64       // upper bounds, sorted ascending
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, updated by CAS
}

func newHistogram(buckets []float64) *Histogram {
	bs := append([]float64(nil), buckets...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one observation (e.g. a request latency in seconds).
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

type metric struct {
	labels  string // rendered label block, "" or `{k="v",...}`
	counter *Counter
	hist    *Histogram
	gauge   func() float64
}

type family struct {
	name    string
	help    string
	typ     string
	metrics map[string]*metric
}

// Registry holds metric families and renders them.
type Registry struct {
	mu sync.Mutex
	// guarded by mu
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelBlock renders alternating key/value pairs deterministically.
func labelBlock(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("servemetrics: labels must be key/value pairs")
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", kv[i], kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// family returns (creating if needed) the named family. It must be called
// with r.mu held.
func (r *Registry) family(name, help, typ string) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, metrics: make(map[string]*metric)}
		r.families[name] = f
	}
	return f
}

// Counter returns (creating on first use) the counter of the family with
// the given constant labels, supplied as alternating key/value pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, "counter")
	lb := labelBlock(labels)
	m, ok := f.metrics[lb]
	if !ok {
		m = &metric{labels: lb, counter: &Counter{}}
		f.metrics[lb] = m
	}
	return m.counter
}

// Histogram returns (creating on first use) the histogram of the family
// with the given constant labels. nil buckets means DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, "histogram")
	lb := labelBlock(labels)
	m, ok := f.metrics[lb]
	if !ok {
		m = &metric{labels: lb, hist: newHistogram(buckets)}
		f.metrics[lb] = m
	}
	return m.hist
}

// Gauge registers a callback sampled at render time (e.g. queue depth).
func (r *Registry) Gauge(name, help string, fn func() float64, labels ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, "gauge")
	lb := labelBlock(labels)
	if _, ok := f.metrics[lb]; !ok {
		f.metrics[lb] = &metric{labels: lb, gauge: fn}
	}
}

// fmtFloat renders a float the way Prometheus expects.
func fmtFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// histLabels merges the le label into an existing label block.
func histLabels(lb, le string) string {
	if lb == "" {
		return fmt.Sprintf("{le=%q}", le)
	}
	return fmt.Sprintf("%s,le=%q}", strings.TrimSuffix(lb, "}"), le)
}

// WritePrometheus renders every family in the text exposition format, in
// sorted name order with each family's label blocks sorted. Canonical
// ordering makes the exposition byte-reproducible regardless of which call
// site registered a metric first — the property the detorder prometheus-
// text sink checks, and what lets scrapes be diffed byte-for-byte. The
// first write error, if any, is returned (scrape handlers typically cannot
// act on it beyond dropping the response).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	pf := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := r.families[name]
		if err := pf("# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		blocks := make([]string, 0, len(f.metrics))
		for lb := range f.metrics {
			blocks = append(blocks, lb)
		}
		sort.Strings(blocks)
		for _, lb := range blocks {
			m := f.metrics[lb]
			var err error
			switch {
			case m.counter != nil:
				err = pf("%s%s %d\n", f.name, lb, m.counter.Value())
			case m.gauge != nil:
				err = pf("%s%s %s\n", f.name, lb, fmtFloat(m.gauge()))
			case m.hist != nil:
				var cum uint64
				for i, bound := range m.hist.bounds {
					cum += m.hist.counts[i].Load()
					if err = pf("%s_bucket%s %d\n",
						f.name, histLabels(lb, fmtFloat(bound)), cum); err != nil {
						return err
					}
				}
				err = pf("%s_bucket%s %d\n%s_sum%s %s\n%s_count%s %d\n",
					f.name, histLabels(lb, "+Inf"), m.hist.Count(),
					f.name, lb, fmtFloat(m.hist.Sum()),
					f.name, lb, m.hist.Count())
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}
