package servemetrics

import (
	"math"
	"sort"
	"strings"
	"sync"
	"testing"
)

func TestCounterRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "Total requests.", "endpoint", "/v1/solve")
	c.Inc()
	c.Add(2)
	if r.Counter("requests_total", "Total requests.", "endpoint", "/v1/solve") != c {
		t.Fatal("same name+labels should return the same counter")
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP requests_total Total requests.",
		"# TYPE requests_total counter",
		`requests_total{endpoint="/v1/solve"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-56.05) > 1e-9 {
		t.Fatalf("sum = %v", h.Sum())
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		"lat_seconds_sum 56.05",
		"lat_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramBoundaryValueIsInclusive(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "h.", []float64{1})
	h.Observe(1) // le="1" is an inclusive upper bound in Prometheus
	var b strings.Builder
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), `h_bucket{le="1"} 1`) {
		t.Errorf("boundary observation not counted in its bucket:\n%s", b.String())
	}
}

func TestGaugeAndLabelMerging(t *testing.T) {
	r := NewRegistry()
	v := 7.5
	r.Gauge("queue_depth", "Jobs queued.", func() float64 { return v })
	r.Histogram("lab_seconds", "Labeled.", []float64{1}, "endpoint", "/x").Observe(0.5)
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE queue_depth gauge",
		"queue_depth 7.5",
		`lab_seconds_bucket{endpoint="/x",le="1"} 1`,
		`lab_seconds_sum{endpoint="/x"} 0.5`,
		`lab_seconds_count{endpoint="/x"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentObservations(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c.")
	h := r.Histogram("h_seconds", "h.", nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(0.01)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d", c.Value())
	}
	if h.Count() != 8000 || math.Abs(h.Sum()-80) > 1e-6 {
		t.Errorf("hist count/sum = %d/%v", h.Count(), h.Sum())
	}
}

// TestWritePrometheusSorted registers families and label blocks in
// deliberately unsorted order and asserts the exposition comes out in
// sorted family-name order with sorted label blocks inside each family —
// the canonical form that makes scrapes byte-reproducible no matter which
// call site registered first.
func TestWritePrometheusSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total", "Last family registered first.").Inc()
	r.Counter("aa_total", "First family registered last.", "shard", "b").Inc()
	r.Counter("aa_total", "First family registered last.", "shard", "a").Inc()
	r.Gauge("mm_depth", "Middle family.", func() float64 { return 1 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	var families []string
	var sampleLines []string
	for _, line := range strings.Split(out, "\n") {
		if name, ok := strings.CutPrefix(line, "# TYPE "); ok {
			families = append(families, strings.Fields(name)[0])
		}
		if line != "" && !strings.HasPrefix(line, "#") {
			sampleLines = append(sampleLines, line)
		}
	}
	if !sort.StringsAreSorted(families) {
		t.Errorf("families not in sorted order: %v", families)
	}
	var aaBlocks []string
	for _, line := range sampleLines {
		if strings.HasPrefix(line, "aa_total{") {
			aaBlocks = append(aaBlocks, line)
		}
	}
	if !sort.StringsAreSorted(aaBlocks) {
		t.Errorf("label blocks not in sorted order: %v", aaBlocks)
	}
	if len(aaBlocks) != 2 {
		t.Fatalf("expected 2 aa_total samples, got %v", aaBlocks)
	}
	// Two registries fed the same metrics in different orders must render
	// byte-identical expositions.
	r2 := NewRegistry()
	r2.Gauge("mm_depth", "Middle family.", func() float64 { return 1 })
	r2.Counter("aa_total", "First family registered last.", "shard", "a").Inc()
	r2.Counter("aa_total", "First family registered last.", "shard", "b").Inc()
	r2.Counter("zz_total", "Last family registered first.").Inc()
	var b2 strings.Builder
	if err := r2.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != out {
		t.Errorf("exposition depends on registration order:\n--- a ---\n%s\n--- b ---\n%s", out, b2.String())
	}
}
