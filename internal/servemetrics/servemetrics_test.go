package servemetrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "Total requests.", "endpoint", "/v1/solve")
	c.Inc()
	c.Add(2)
	if r.Counter("requests_total", "Total requests.", "endpoint", "/v1/solve") != c {
		t.Fatal("same name+labels should return the same counter")
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP requests_total Total requests.",
		"# TYPE requests_total counter",
		`requests_total{endpoint="/v1/solve"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-56.05) > 1e-9 {
		t.Fatalf("sum = %v", h.Sum())
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		"lat_seconds_sum 56.05",
		"lat_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramBoundaryValueIsInclusive(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "h.", []float64{1})
	h.Observe(1) // le="1" is an inclusive upper bound in Prometheus
	var b strings.Builder
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), `h_bucket{le="1"} 1`) {
		t.Errorf("boundary observation not counted in its bucket:\n%s", b.String())
	}
}

func TestGaugeAndLabelMerging(t *testing.T) {
	r := NewRegistry()
	v := 7.5
	r.Gauge("queue_depth", "Jobs queued.", func() float64 { return v })
	r.Histogram("lab_seconds", "Labeled.", []float64{1}, "endpoint", "/x").Observe(0.5)
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE queue_depth gauge",
		"queue_depth 7.5",
		`lab_seconds_bucket{endpoint="/x",le="1"} 1`,
		`lab_seconds_sum{endpoint="/x"} 0.5`,
		`lab_seconds_count{endpoint="/x"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentObservations(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c.")
	h := r.Histogram("h_seconds", "h.", nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(0.01)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d", c.Value())
	}
	if h.Count() != 8000 || math.Abs(h.Sum()-80) > 1e-6 {
		t.Errorf("hist count/sum = %d/%v", h.Count(), h.Sum())
	}
}
