package redeploy

import (
	"math"
	"math/rand"
	"testing"

	"hipo/internal/geom"
	"hipo/internal/model"
)

func strat(x, y, o float64, q int) model.Strategy {
	return model.Strategy{Pos: geom.V(x, y), Orient: o, Type: q}
}

func TestCostModel(t *testing.T) {
	cm := CostModel{PerMeter: 2, PerRadian: 3}
	a := strat(0, 0, 0, 0)
	b := strat(3, 4, math.Pi/2, 0)
	want := 2*5.0 + 3*math.Pi/2
	if got := cm.Cost(a, b); math.Abs(got-want) > 1e-12 {
		t.Errorf("cost = %v, want %v", got, want)
	}
	// Rotation uses the smallest angle.
	c := strat(0, 0, 2*math.Pi-0.1, 0)
	if got := cm.Cost(a, c); math.Abs(got-0.3) > 1e-9 {
		t.Errorf("wrap rotation cost = %v, want 0.3", got)
	}
}

func TestMinTotalIdentity(t *testing.T) {
	old := []model.Strategy{strat(0, 0, 0, 0), strat(10, 0, 1, 0)}
	plan, err := MinTotal(old, old, 1, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if plan.Total != 0 || plan.Max != 0 {
		t.Errorf("identity redeployment cost = %v/%v", plan.Total, plan.Max)
	}
}

func TestMinTotalCrossAssignment(t *testing.T) {
	// Old at x=0 and x=10; new at x=1 and x=11. Matching straight across
	// costs 1+1=2; crossing costs 11+9=20.
	old := []model.Strategy{strat(0, 0, 0, 0), strat(10, 0, 0, 0)}
	new_ := []model.Strategy{strat(11, 0, 0, 0), strat(1, 0, 0, 0)}
	plan, err := MinTotal(old, new_, 1, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plan.Total-2) > 1e-12 {
		t.Errorf("total = %v, want 2", plan.Total)
	}
}

func TestTypesMatchedSeparately(t *testing.T) {
	// A type-0 charger may not be matched to a type-1 slot even if closer.
	old := []model.Strategy{strat(0, 0, 0, 0), strat(10, 0, 0, 1)}
	new_ := []model.Strategy{strat(9, 0, 0, 0), strat(1, 0, 0, 1)}
	plan, err := MinTotal(old, new_, 2, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	for _, mv := range plan.Moves {
		if mv.From.Type != mv.To.Type {
			t.Fatalf("cross-type move %v -> %v", mv.From, mv.To)
		}
	}
	if math.Abs(plan.Total-18) > 1e-12 {
		t.Errorf("total = %v, want 18", plan.Total)
	}
}

// TestSurplusNewInstalls covers the deficit direction: more new chargers
// than old. The extra chargers must appear as install moves at PerInstall,
// and the real pairs must still match minimally.
func TestSurplusNewInstalls(t *testing.T) {
	cm := CostModel{PerMeter: 1, PerRadian: 1, PerInstall: 2.5, PerDecommission: 9}
	old := []model.Strategy{strat(0, 0, 0, 0)}
	new_ := []model.Strategy{strat(1, 0, 0, 0), strat(50, 0, 0, 0), strat(51, 0, 0, 0)}
	for name, solve := range map[string]func() (*Plan, error){
		"MinTotal": func() (*Plan, error) { return MinTotal(old, new_, 1, cm) },
		"MinMax":   func() (*Plan, error) { return MinMax(old, new_, 1, cm) },
	} {
		plan, err := solve()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(plan.Moves) != 3 {
			t.Fatalf("%s: %d moves, want 3", name, len(plan.Moves))
		}
		installs, moves := 0, 0
		for _, mv := range plan.Moves {
			switch mv.Kind {
			case KindInstall:
				installs++
				if mv.Cost != 2.5 {
					t.Errorf("%s: install cost %v, want 2.5", name, mv.Cost)
				}
				if mv.From != mv.To {
					t.Errorf("%s: install move has From %v != To %v", name, mv.From, mv.To)
				}
			case KindMove:
				moves++
				// The single real charger must take the cheap pairing.
				if math.Abs(mv.Cost-1) > 1e-12 {
					t.Errorf("%s: real move cost %v, want 1", name, mv.Cost)
				}
			default:
				t.Errorf("%s: unexpected kind %q", name, mv.Kind)
			}
		}
		if installs != 2 || moves != 1 {
			t.Fatalf("%s: %d installs / %d moves, want 2/1", name, installs, moves)
		}
		if want := 1 + 2*2.5; math.Abs(plan.Total-want) > 1e-12 {
			t.Errorf("%s: total %v, want %v", name, plan.Total, want)
		}
	}
}

// TestSurplusOldDecommissions covers the surplus direction: more old
// chargers than new. Extras become decommission moves at PerDecommission.
func TestSurplusOldDecommissions(t *testing.T) {
	cm := CostModel{PerMeter: 1, PerRadian: 1, PerInstall: 9, PerDecommission: 0.75}
	old := []model.Strategy{strat(0, 0, 0, 1), strat(10, 0, 0, 1), strat(20, 0, 0, 1)}
	new_ := []model.Strategy{strat(21, 0, 0, 1)}
	plan, err := MinTotal(old, new_, 2, cm)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Moves) != 3 {
		t.Fatalf("%d moves, want 3", len(plan.Moves))
	}
	decomms, moves := 0, 0
	for _, mv := range plan.Moves {
		switch mv.Kind {
		case KindDecommission:
			decomms++
			if mv.Cost != 0.75 {
				t.Errorf("decommission cost %v, want 0.75", mv.Cost)
			}
			if mv.From != mv.To {
				t.Errorf("decommission move has From %v != To %v", mv.From, mv.To)
			}
		case KindMove:
			moves++
			if math.Abs(mv.Cost-1) > 1e-12 {
				t.Errorf("real move cost %v, want 1 (old at 20 -> new at 21)", mv.Cost)
			}
		default:
			t.Errorf("unexpected kind %q", mv.Kind)
		}
	}
	if decomms != 2 || moves != 1 {
		t.Fatalf("%d decommissions / %d moves, want 2/1", decomms, moves)
	}
	if want := 1 + 2*0.75; math.Abs(plan.Total-want) > 1e-12 {
		t.Errorf("total %v, want %v", plan.Total, want)
	}
}

// TestMixedSurplusAcrossTypes: one type gains a charger while another loses
// one — both paddings engage in the same plan, independently per type.
func TestMixedSurplusAcrossTypes(t *testing.T) {
	cm := CostModel{PerMeter: 1, PerInstall: 3, PerDecommission: 4}
	old := []model.Strategy{strat(0, 0, 0, 0), strat(5, 0, 0, 1), strat(6, 0, 0, 1)}
	new_ := []model.Strategy{strat(0, 0, 0, 0), strat(2, 0, 0, 0), strat(5, 0, 0, 1)}
	plan, err := MinTotal(old, new_, 2, cm)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[MoveKind]int{}
	for _, mv := range plan.Moves {
		kinds[mv.Kind]++
	}
	if kinds[KindInstall] != 1 || kinds[KindDecommission] != 1 || kinds[KindMove] != 2 {
		t.Fatalf("kind histogram %v, want 1 install / 1 decommission / 2 moves", kinds)
	}
	// type 0: identity move (0) + install (3); type 1: identity move (0) +
	// decommission (4).
	if want := 3.0 + 4.0; math.Abs(plan.Total-want) > 1e-12 {
		t.Errorf("total %v, want %v", plan.Total, want)
	}
}

// TestPaddingDoesNotPerturbRealMatching: with padding present, the real
// pairs must still take the assignment they would take in a balanced
// instance (flat virtual costs cannot bias among real pairings).
func TestPaddingDoesNotPerturbRealMatching(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(4)
		var old, new_ []model.Strategy
		for i := 0; i < n; i++ {
			old = append(old, strat(rng.Float64()*20, rng.Float64()*20, 0, 0))
			new_ = append(new_, strat(rng.Float64()*20, rng.Float64()*20, 0, 0))
		}
		cm := CostModel{PerMeter: 1, PerInstall: 100, PerDecommission: 100}
		balanced, err := MinTotal(old, new_, 1, cm)
		if err != nil {
			t.Fatal(err)
		}
		// Add one far-away new charger: it must become the install (every
		// real old charger is closer to its balanced partner than to it).
		padded, err := MinTotal(old, append(new_, strat(1e6, 1e6, 0, 0)), 1, cm)
		if err != nil {
			t.Fatal(err)
		}
		if want := balanced.Total + 100; math.Abs(padded.Total-want) > 1e-9 {
			t.Fatalf("trial %d: padded total %v, want balanced %v + 100", trial, padded.Total, balanced.Total)
		}
	}
}

func TestMinMaxPrefersBalanced(t *testing.T) {
	// Two old chargers at 0 and 2; new at 1 and 3.
	// Straight: costs {1, 1}, max 1, total 2.
	// Crossed: costs {3, 1}, max 3.
	old := []model.Strategy{strat(0, 0, 0, 0), strat(2, 0, 0, 0)}
	new_ := []model.Strategy{strat(1, 0, 0, 0), strat(3, 0, 0, 0)}
	plan, err := MinMax(old, new_, 1, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plan.Max-1) > 1e-12 {
		t.Errorf("max = %v, want 1", plan.Max)
	}
	if math.Abs(plan.Total-2) > 1e-12 {
		t.Errorf("total = %v, want 2", plan.Total)
	}
}

func TestMinMaxCanSacrificeTotal(t *testing.T) {
	// MinTotal may pick {0, 10} (total 10, max 10); MinMax must prefer
	// {6, 6} (total 12, max 6).
	old := []model.Strategy{strat(0, 0, 0, 0), strat(10, 0, 0, 0)}
	new_ := []model.Strategy{strat(0, 0, 0, 0), strat(4, 0, 0, 0)}
	// Costs: old0->new0: 0, old0->new1: 4, old1->new0: 10, old1->new1: 6.
	// MinTotal: 0 + 6 = 6 (max 6). MinMax: bottleneck 6 same matching.
	// Adjust to make them differ:
	new_ = []model.Strategy{strat(1, 0, 0, 0), strat(9.5, 0, 0, 0)}
	// Costs: o0->n0 1, o0->n1 9.5, o1->n0 9, o1->n1 0.5.
	// Both objectives pick straight: total 1.5, max 1. Need a real conflict:
	old = []model.Strategy{strat(0, 0, 0, 0), strat(1, 0, 0, 0)}
	new_ = []model.Strategy{strat(0, 0, 0, 0), strat(7, 0, 0, 0)}
	// o0->n0 0, o0->n1 7, o1->n0 1, o1->n1 6.
	// Matching A: (o0->n0, o1->n1): total 6, max 6.
	// Matching B: (o0->n1, o1->n0): total 8, max 7.
	// MinTotal = A (6); MinMax = A too (max 6 < 7). For a genuine trade-off:
	old = []model.Strategy{strat(0, 0, 0, 0), strat(4, 0, 0, 0)}
	new_ = []model.Strategy{strat(3, 0, 0, 0), strat(5, 0, 0, 0)}
	// o0->n0 3, o0->n1 5, o1->n0 1, o1->n1 1.
	// A: (n0,n1) = 3+1 = 4, max 3. B: (n1,n0) = 5+1 = 6, max 5.
	mt, err := MinTotal(old, new_, 1, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	mm, err := MinMax(old, new_, 1, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if mm.Max > mt.Max+1e-12 {
		t.Errorf("MinMax.Max %v exceeds MinTotal.Max %v", mm.Max, mt.Max)
	}
	if mm.Max != 3 || mm.Total != 4 {
		t.Errorf("minmax plan = max %v total %v, want 3/4", mm.Max, mm.Total)
	}
}

// Property: MinMax's bottleneck never exceeds MinTotal's bottleneck, and
// MinTotal's total never exceeds MinMax's total.
func TestObjectiveDominanceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(5)
		var old, new_ []model.Strategy
		for i := 0; i < n; i++ {
			old = append(old, strat(rng.Float64()*20, rng.Float64()*20, rng.Float64()*6.28, 0))
			new_ = append(new_, strat(rng.Float64()*20, rng.Float64()*20, rng.Float64()*6.28, 0))
		}
		mt, err := MinTotal(old, new_, 1, DefaultCostModel())
		if err != nil {
			t.Fatal(err)
		}
		mm, err := MinMax(old, new_, 1, DefaultCostModel())
		if err != nil {
			t.Fatal(err)
		}
		if mm.Max > mt.Max+1e-9 {
			t.Fatalf("trial %d: MinMax.Max %v > MinTotal.Max %v", trial, mm.Max, mt.Max)
		}
		if mt.Total > mm.Total+1e-9 {
			t.Fatalf("trial %d: MinTotal.Total %v > MinMax.Total %v", trial, mt.Total, mm.Total)
		}
	}
}

func TestEmptyPlan(t *testing.T) {
	plan, err := MinTotal(nil, nil, 3, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Moves) != 0 || plan.Total != 0 {
		t.Error("empty inputs should yield an empty plan")
	}
}
