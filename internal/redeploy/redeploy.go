// Package redeploy implements the charger redeployment problems of Section
// 8.1: when the device topology changes and HIPO produces a new placement,
// match old charger positions to new ones per charger type so as to
// minimize either the overall switching overhead (weighted bipartite perfect
// matching, solved by the Hungarian algorithm) or the maximum per-charger
// overhead followed by total overhead (bottleneck matching via binary
// search with Hall-feasibility checks, then Hungarian on the thresholded
// graph).
package redeploy

import (
	"fmt"

	"hipo/internal/geom"
	"hipo/internal/matching"
	"hipo/internal/model"
)

// CostModel weighs the two components of switching overhead: moving a
// charger and rotating it.
type CostModel struct {
	// PerMeter is the cost per unit travel distance.
	PerMeter float64
	// PerRadian is the cost per radian of rotation (smallest rotation).
	PerRadian float64
}

// DefaultCostModel weighs a meter of travel like a radian of rotation.
func DefaultCostModel() CostModel { return CostModel{PerMeter: 1, PerRadian: 1} }

// Cost returns the switching overhead of transforming strategy a into b.
func (cm CostModel) Cost(a, b model.Strategy) float64 {
	return cm.PerMeter*a.Pos.Dist(b.Pos) + cm.PerRadian*geom.AbsAngleDiff(a.Orient, b.Orient)
}

// Move describes one charger's transition from an old strategy to a new
// one.
type Move struct {
	From, To model.Strategy
	Cost     float64
}

// Plan is a complete redeployment: one move per charger.
type Plan struct {
	Moves []Move
	// Total is the summed switching overhead.
	Total float64
	// Max is the largest single-charger overhead.
	Max float64
}

// groupByType partitions strategies by charger type, preserving order.
func groupByType(ss []model.Strategy, nTypes int) [][]model.Strategy {
	out := make([][]model.Strategy, nTypes)
	for _, s := range ss {
		out[s.Type] = append(out[s.Type], s)
	}
	return out
}

// MinTotal computes the redeployment plan minimizing the overall switching
// overhead (Section 8.1.1): per charger type, a minimum-cost perfect
// matching between old and new strategies. Old and new must contain the
// same number of strategies of every type.
func MinTotal(old, new_ []model.Strategy, nTypes int, cm CostModel) (*Plan, error) {
	return solve(old, new_, nTypes, cm, false)
}

// MinMax computes the plan minimizing the maximum per-charger overhead and,
// among those, the total overhead (Section 8.1.2).
func MinMax(old, new_ []model.Strategy, nTypes int, cm CostModel) (*Plan, error) {
	return solve(old, new_, nTypes, cm, true)
}

func solve(old, new_ []model.Strategy, nTypes int, cm CostModel, bottleneck bool) (*Plan, error) {
	og := groupByType(old, nTypes)
	ng := groupByType(new_, nTypes)
	plan := &Plan{}
	for q := 0; q < nTypes; q++ {
		if len(og[q]) != len(ng[q]) {
			return nil, fmt.Errorf("redeploy: type %d has %d old but %d new strategies",
				q, len(og[q]), len(ng[q]))
		}
		n := len(og[q])
		if n == 0 {
			continue
		}
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = cm.Cost(og[q][i], ng[q][j])
			}
		}
		var assign []int
		var err error
		if bottleneck {
			assign, _, _, err = matching.Bottleneck(cost)
		} else {
			assign, _, err = matching.Hungarian(cost)
		}
		if err != nil {
			return nil, fmt.Errorf("redeploy: type %d: %w", q, err)
		}
		for i, j := range assign {
			mv := Move{From: og[q][i], To: ng[q][j], Cost: cost[i][j]}
			plan.Moves = append(plan.Moves, mv)
			plan.Total += mv.Cost
			if mv.Cost > plan.Max {
				plan.Max = mv.Cost
			}
		}
	}
	return plan, nil
}
