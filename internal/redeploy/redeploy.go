// Package redeploy implements the charger redeployment problems of Section
// 8.1: when the device topology changes and HIPO produces a new placement,
// match old charger positions to new ones per charger type so as to
// minimize either the overall switching overhead (weighted bipartite perfect
// matching, solved by the Hungarian algorithm) or the maximum per-charger
// overhead followed by total overhead (bottleneck matching via binary
// search with Hall-feasibility checks, then Hungarian on the thresholded
// graph).
//
// Unequal per-type counts — a scenario mutation can change how many
// chargers of a type get bought — are handled by padding the cost matrix to
// a square: surplus new strategies match against virtual "install" sources
// at CostModel.PerInstall apiece, surplus old strategies match against
// virtual "decommission" sinks at CostModel.PerDecommission. Because every
// virtual row (column) carries one flat cost toward every real column
// (row), the padding changes neither which real pairs the matching prefers
// nor the optimal assignment among them; it only accounts for the
// unavoidable installs/decommissions explicitly in the plan.
package redeploy

import (
	"fmt"

	"hipo/internal/geom"
	"hipo/internal/matching"
	"hipo/internal/model"
)

// MoveKind classifies a plan entry.
type MoveKind string

const (
	// KindMove is an existing charger transitioning between strategies.
	KindMove MoveKind = ""
	// KindInstall is a charger present only in the new placement: From is
	// meaningless (set equal to To) and the cost is CostModel.PerInstall.
	KindInstall MoveKind = "install"
	// KindDecommission is a charger present only in the old placement: To is
	// meaningless (set equal to From) and the cost is
	// CostModel.PerDecommission.
	KindDecommission MoveKind = "decommission"
)

// CostModel weighs the components of switching overhead: moving a charger,
// rotating it, and standing one up or retiring it.
type CostModel struct {
	// PerMeter is the cost per unit travel distance.
	PerMeter float64
	// PerRadian is the cost per radian of rotation (smallest rotation).
	PerRadian float64
	// PerInstall is the flat cost of deploying a charger that has no old
	// counterpart (new count exceeds old count for its type).
	PerInstall float64
	// PerDecommission is the flat cost of retiring a charger that has no
	// new counterpart (old count exceeds new count for its type).
	PerDecommission float64
}

// DefaultCostModel weighs a meter of travel like a radian of rotation;
// installs and decommissions are free unless priced explicitly.
func DefaultCostModel() CostModel { return CostModel{PerMeter: 1, PerRadian: 1} }

// Cost returns the switching overhead of transforming strategy a into b.
func (cm CostModel) Cost(a, b model.Strategy) float64 {
	return cm.PerMeter*a.Pos.Dist(b.Pos) + cm.PerRadian*geom.AbsAngleDiff(a.Orient, b.Orient)
}

// Move describes one charger's transition from an old strategy to a new
// one, or an install/decommission when the per-type counts differ.
type Move struct {
	From, To model.Strategy
	Cost     float64
	Kind     MoveKind
}

// Plan is a complete redeployment: one move per charger.
type Plan struct {
	Moves []Move
	// Total is the summed switching overhead.
	Total float64
	// Max is the largest single-charger overhead.
	Max float64
}

// groupByType partitions strategies by charger type, preserving order.
func groupByType(ss []model.Strategy, nTypes int) [][]model.Strategy {
	out := make([][]model.Strategy, nTypes)
	for _, s := range ss {
		out[s.Type] = append(out[s.Type], s)
	}
	return out
}

// MinTotal computes the redeployment plan minimizing the overall switching
// overhead (Section 8.1.1): per charger type, a minimum-cost matching
// between old and new strategies, padded with installs/decommissions when
// the counts differ.
func MinTotal(old, new_ []model.Strategy, nTypes int, cm CostModel) (*Plan, error) {
	return solve(old, new_, nTypes, cm, false)
}

// MinMax computes the plan minimizing the maximum per-charger overhead and,
// among those, the total overhead (Section 8.1.2).
func MinMax(old, new_ []model.Strategy, nTypes int, cm CostModel) (*Plan, error) {
	return solve(old, new_, nTypes, cm, true)
}

func solve(old, new_ []model.Strategy, nTypes int, cm CostModel, bottleneck bool) (*Plan, error) {
	for _, s := range old {
		if s.Type < 0 || s.Type >= nTypes {
			return nil, fmt.Errorf("redeploy: old strategy type %d out of range [0, %d)", s.Type, nTypes)
		}
	}
	for _, s := range new_ {
		if s.Type < 0 || s.Type >= nTypes {
			return nil, fmt.Errorf("redeploy: new strategy type %d out of range [0, %d)", s.Type, nTypes)
		}
	}
	og := groupByType(old, nTypes)
	ng := groupByType(new_, nTypes)
	plan := &Plan{}
	for q := 0; q < nTypes; q++ {
		nOld, nNew := len(og[q]), len(ng[q])
		n := max(nOld, nNew)
		if n == 0 {
			continue
		}
		// Square cost matrix: rows past nOld are virtual install sources,
		// columns past nNew are virtual decommission sinks. A virtual row
		// meeting a virtual column is a no-op pairing at zero cost.
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				switch {
				case i < nOld && j < nNew:
					cost[i][j] = cm.Cost(og[q][i], ng[q][j])
				case i < nOld: // real old, virtual sink
					cost[i][j] = cm.PerDecommission
				case j < nNew: // virtual source, real new
					cost[i][j] = cm.PerInstall
				}
			}
		}
		var assign []int
		var err error
		if bottleneck {
			assign, _, _, err = matching.Bottleneck(cost)
		} else {
			assign, _, err = matching.Hungarian(cost)
		}
		if err != nil {
			return nil, fmt.Errorf("redeploy: type %d: %w", q, err)
		}
		for i, j := range assign {
			var mv Move
			switch {
			case i < nOld && j < nNew:
				mv = Move{From: og[q][i], To: ng[q][j], Cost: cost[i][j]}
			case i < nOld:
				mv = Move{From: og[q][i], To: og[q][i], Cost: cost[i][j], Kind: KindDecommission}
			case j < nNew:
				mv = Move{From: ng[q][j], To: ng[q][j], Cost: cost[i][j], Kind: KindInstall}
			default:
				continue // virtual-virtual pairing: not a charger
			}
			plan.Moves = append(plan.Moves, mv)
			plan.Total += mv.Cost
			if mv.Cost > plan.Max {
				plan.Max = mv.Cost
			}
		}
	}
	return plan, nil
}
