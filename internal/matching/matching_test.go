package matching

import (
	"math"
	"math/rand"
	"testing"
)

func TestHungarianSmall(t *testing.T) {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	assign, total, err := Hungarian(cost)
	if err != nil {
		t.Fatal(err)
	}
	// Optimal: row0→col1 (1), row1→col0 (2), row2→col2 (2) = 5.
	if total != 5 {
		t.Errorf("total = %v, want 5", total)
	}
	seen := make(map[int]bool)
	for _, j := range assign {
		if seen[j] {
			t.Fatal("column assigned twice")
		}
		seen[j] = true
	}
}

func TestHungarianIdentity(t *testing.T) {
	n := 6
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			if i == j {
				cost[i][j] = 0
			} else {
				cost[i][j] = 10
			}
		}
	}
	assign, total, err := Hungarian(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != 0 {
		t.Errorf("total = %v", total)
	}
	for i, j := range assign {
		if i != j {
			t.Errorf("assign[%d] = %d", i, j)
		}
	}
}

func TestHungarianForbidden(t *testing.T) {
	cost := [][]float64{
		{Forbidden, 1},
		{1, Forbidden},
	}
	assign, total, err := Hungarian(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != 2 || assign[0] != 1 || assign[1] != 0 {
		t.Errorf("assign=%v total=%v", assign, total)
	}
	// Fully forbidden row: infeasible.
	bad := [][]float64{
		{Forbidden, Forbidden},
		{1, 1},
	}
	if _, _, err := Hungarian(bad); err == nil {
		t.Error("expected infeasible")
	}
}

func TestHungarianEmptyAndNonSquare(t *testing.T) {
	if _, total, err := Hungarian(nil); err != nil || total != 0 {
		t.Error("empty matrix should be trivially solvable")
	}
	if _, _, err := Hungarian([][]float64{{1, 2}}); err == nil {
		t.Error("non-square matrix should error")
	}
}

// bruteAssign finds the optimal assignment by permutation enumeration.
func bruteAssign(cost [][]float64) float64 {
	n := len(cost)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := math.Inf(1)
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			tot := 0.0
			for i, j := range perm {
				if cost[i][j] == Forbidden {
					return
				}
				tot += cost[i][j]
			}
			if tot < best {
				best = tot
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return best
}

// Property: Hungarian matches brute force on random instances.
func TestHungarianMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(5)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = math.Floor(rng.Float64() * 100)
			}
		}
		_, got, err := Hungarian(cost)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteAssign(cost)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: hungarian %v != brute %v", trial, got, want)
		}
	}
}

func TestHopcroftKarp(t *testing.T) {
	// 3×3: 0-{0,1}, 1-{0}, 2-{1,2} has a perfect matching.
	adj := [][]int{{0, 1}, {0}, {1, 2}}
	size, matchL := HopcroftKarp(3, 3, adj)
	if size != 3 {
		t.Fatalf("size = %d", size)
	}
	seen := map[int]bool{}
	for i, j := range matchL {
		if j < 0 || seen[j] {
			t.Fatalf("bad match for %d: %d", i, j)
		}
		seen[j] = true
	}
	// No perfect matching: two lefts forced to one right.
	adj = [][]int{{0}, {0}, {1, 2}}
	size, _ = HopcroftKarp(3, 3, adj)
	if size != 2 {
		t.Fatalf("size = %d, want 2", size)
	}
	if HasPerfectMatching(3, adj) {
		t.Error("should not have a perfect matching")
	}
}

// Property: Hopcroft–Karp matching size equals the brute-force maximum on
// random bipartite graphs.
func TestHopcroftKarpMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(5)
		adj := make([][]int, n)
		for i := range adj {
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.4 {
					adj[i] = append(adj[i], j)
				}
			}
		}
		got, _ := HopcroftKarp(n, n, adj)
		want := bruteMatching(n, adj)
		if got != want {
			t.Fatalf("trial %d: HK %d != brute %d", trial, got, want)
		}
	}
}

func bruteMatching(n int, adj [][]int) int {
	usedR := make([]bool, n)
	best := 0
	var rec func(i, count int)
	rec = func(i, count int) {
		if count > best {
			best = count
		}
		if i == n {
			return
		}
		rec(i+1, count) // leave i unmatched
		for _, j := range adj[i] {
			if !usedR[j] {
				usedR[j] = true
				rec(i+1, count+1)
				usedR[j] = false
			}
		}
	}
	rec(0, 0)
	return best
}

func TestBottleneck(t *testing.T) {
	cost := [][]float64{
		{10, 3, 8},
		{4, 9, 7},
		{6, 5, 2},
	}
	assign, bn, total, err := Bottleneck(cost)
	if err != nil {
		t.Fatal(err)
	}
	// Min-max: {3,4,2} with max 4 is achievable (0→1, 1→0, 2→2).
	if bn != 4 {
		t.Errorf("bottleneck = %v, want 4", bn)
	}
	if total != 9 {
		t.Errorf("total = %v, want 9", total)
	}
	if assign[0] != 1 || assign[1] != 0 || assign[2] != 2 {
		t.Errorf("assign = %v", assign)
	}
}

// Property: the bottleneck value is the minimum over all permutations of
// the maximum edge, verified by brute force.
func TestBottleneckMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(4)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = math.Floor(rng.Float64() * 50)
			}
		}
		_, bn, _, err := Bottleneck(cost)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteBottleneck(cost)
		if bn != want {
			t.Fatalf("trial %d: bottleneck %v != brute %v", trial, bn, want)
		}
	}
}

func bruteBottleneck(cost [][]float64) float64 {
	n := len(cost)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := math.Inf(1)
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			mx := 0.0
			for i, j := range perm {
				if cost[i][j] > mx {
					mx = cost[i][j]
				}
			}
			if mx < best {
				best = mx
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return best
}

func TestBottleneckInfeasible(t *testing.T) {
	cost := [][]float64{
		{Forbidden, Forbidden},
		{1, 1},
	}
	if _, _, _, err := Bottleneck(cost); err == nil {
		t.Error("expected infeasible")
	}
	all := [][]float64{{Forbidden}}
	if _, _, _, err := Bottleneck(all); err == nil {
		t.Error("expected infeasible for all-forbidden")
	}
}

func TestBottleneckSecondaryTotalOptimal(t *testing.T) {
	// Both bottleneck-5 matchings exist: the identity (total 15) and the
	// swap of rows 0/1 (total 7). The solver must pick the cheaper one.
	cost := [][]float64{
		{5, 1, 9},
		{1, 5, 9},
		{9, 9, 5},
	}
	_, bn, total, err := Bottleneck(cost)
	if err != nil {
		t.Fatal(err)
	}
	if bn != 5 {
		t.Errorf("bottleneck = %v, want 5", bn)
	}
	if total != 7 {
		t.Errorf("total = %v, want 7", total)
	}
}

// Property (testing/quick): the optimal assignment cost is invariant under
// row permutation of the cost matrix.
func TestQuickHungarianRowPermutationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(5)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = math.Floor(rng.Float64() * 100)
			}
		}
		_, total, err := Hungarian(cost)
		if err != nil {
			t.Fatal(err)
		}
		perm := rng.Perm(n)
		shuffled := make([][]float64, n)
		for i, pi := range perm {
			shuffled[i] = cost[pi]
		}
		_, total2, err := Hungarian(shuffled)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(total-total2) > 1e-9 {
			t.Fatalf("row permutation changed optimum: %v vs %v", total, total2)
		}
	}
}

// Property: adding a constant to every entry shifts the optimum by n·c.
func TestQuickHungarianShiftInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(98))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(4)
		c := math.Floor(rng.Float64() * 50)
		cost := make([][]float64, n)
		shifted := make([][]float64, n)
		for i := 0; i < n; i++ {
			cost[i] = make([]float64, n)
			shifted[i] = make([]float64, n)
			for j := 0; j < n; j++ {
				cost[i][j] = math.Floor(rng.Float64() * 100)
				shifted[i][j] = cost[i][j] + c
			}
		}
		_, t1, err := Hungarian(cost)
		if err != nil {
			t.Fatal(err)
		}
		_, t2, err := Hungarian(shifted)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(t2-(t1+float64(n)*c)) > 1e-9 {
			t.Fatalf("shift not linear: %v vs %v + %v·%d", t2, t1, c, n)
		}
	}
}
