// Package matching provides the bipartite-matching substrate for the
// charger redeployment problems of Section 8.1: the Hungarian algorithm for
// minimum-cost perfect assignment, Hopcroft–Karp maximum matching for the
// Hall-feasibility checks, and the bottleneck (min-max) assignment solved by
// binary search over edge weights.
package matching

import (
	"errors"
	"math"
)

// ErrInfeasible is returned when no perfect matching exists under the given
// constraints.
var ErrInfeasible = errors.New("matching: no feasible perfect matching")

// Forbidden marks an edge that may not be used in an assignment.
const Forbidden = math.MaxFloat64

// forbidden reports whether c is the Forbidden sentinel. The equality is
// exact on purpose: the sentinel only ever arises by assignment of the
// constant, never from arithmetic, so no tolerance is involved.
func forbidden(c float64) bool {
	//lint:ignore floatcmp exact comparison against an assigned sentinel constant
	return c == Forbidden
}

// Hungarian solves the n×n minimum-cost assignment problem in O(n³) using
// the Jonker-style shortest augmenting path formulation of the Kuhn–Munkres
// algorithm. cost[i][j] is the cost of assigning row i to column j; entries
// equal to Forbidden are excluded. It returns the column assigned to each
// row and the total cost.
func Hungarian(cost [][]float64) ([]int, float64, error) {
	n := len(cost)
	if n == 0 {
		return nil, 0, nil
	}
	for _, row := range cost {
		if len(row) != n {
			return nil, 0, errors.New("matching: cost matrix not square")
		}
	}
	const inf = math.MaxFloat64

	// 1-indexed potentials/links, standard JV implementation.
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1) // p[j]: row matched to column j (0 = none)
	way := make([]int, n+1)

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := 0; j <= n; j++ {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := -1
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				c := cost[i0-1][j-1]
				if forbidden(c) {
					c = inf
				}
				var cur float64
				if forbidden(c) {
					cur = inf
				} else {
					cur = c - u[i0] - v[j]
				}
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			if j1 < 0 || forbidden(delta) {
				return nil, 0, ErrInfeasible
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
			if j0 == 0 {
				break
			}
		}
	}

	assign := make([]int, n)
	total := 0.0
	for j := 1; j <= n; j++ {
		assign[p[j]-1] = j - 1
		c := cost[p[j]-1][j-1]
		if forbidden(c) {
			return nil, 0, ErrInfeasible
		}
		total += c
	}
	return assign, total, nil
}
