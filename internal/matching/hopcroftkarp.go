package matching

import (
	"errors"
	"sort"
)

// HopcroftKarp computes a maximum matching in a bipartite graph with nLeft
// left vertices and nRight right vertices; adj[i] lists the right vertices
// adjacent to left vertex i. It returns the matching size and the per-left
// match (−1 if unmatched). Runs in O(E·√V).
func HopcroftKarp(nLeft, nRight int, adj [][]int) (int, []int) {
	const infDist = int(^uint(0) >> 1)
	matchL := make([]int, nLeft)
	matchR := make([]int, nRight)
	for i := range matchL {
		matchL[i] = -1
	}
	for j := range matchR {
		matchR[j] = -1
	}
	dist := make([]int, nLeft)
	queue := make([]int, 0, nLeft)

	bfs := func() bool {
		queue = queue[:0]
		for i := 0; i < nLeft; i++ {
			if matchL[i] == -1 {
				dist[i] = 0
				queue = append(queue, i)
			} else {
				dist[i] = infDist
			}
		}
		found := false
		for head := 0; head < len(queue); head++ {
			i := queue[head]
			for _, j := range adj[i] {
				k := matchR[j]
				if k == -1 {
					found = true
				} else if dist[k] == infDist {
					dist[k] = dist[i] + 1
					queue = append(queue, k)
				}
			}
		}
		return found
	}

	var dfs func(i int) bool
	dfs = func(i int) bool {
		for _, j := range adj[i] {
			k := matchR[j]
			if k == -1 || (dist[k] == dist[i]+1 && dfs(k)) {
				matchL[i] = j
				matchR[j] = i
				return true
			}
		}
		dist[i] = infDist
		return false
	}

	size := 0
	for bfs() {
		for i := 0; i < nLeft; i++ {
			if matchL[i] == -1 && dfs(i) {
				size++
			}
		}
	}
	return size, matchL
}

// HasPerfectMatching reports whether a bipartite graph on n+n vertices has
// a perfect matching — the Hall's-theorem feasibility check used in the
// min-max redeployment search (Section 8.1.2).
func HasPerfectMatching(n int, adj [][]int) bool {
	size, _ := HopcroftKarp(n, n, adj)
	return size == n
}

// Bottleneck solves the min-max (bottleneck) assignment problem: find a
// perfect matching minimizing the maximum edge cost, then, among such
// matchings, one minimizing total cost (via Hungarian on the thresholded
// graph). Forbidden entries are excluded. Returns the assignment, the
// bottleneck value, and the total cost.
func Bottleneck(cost [][]float64) ([]int, float64, float64, error) {
	n := len(cost)
	if n == 0 {
		return nil, 0, 0, nil
	}
	// Collect and sort distinct finite weights for binary search.
	var weights []float64
	for i := range cost {
		if len(cost[i]) != n {
			return nil, 0, 0, errNotSquare
		}
		for j := range cost[i] {
			if !forbidden(cost[i][j]) {
				weights = append(weights, cost[i][j])
			}
		}
	}
	if len(weights) == 0 {
		return nil, 0, 0, ErrInfeasible
	}
	sort.Float64s(weights)
	weights = dedupFloats(weights)

	feasibleAt := func(w float64) bool {
		adj := make([][]int, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if !forbidden(cost[i][j]) && cost[i][j] <= w {
					adj[i] = append(adj[i], j)
				}
			}
		}
		return HasPerfectMatching(n, adj)
	}

	// Binary search the smallest feasible bottleneck weight.
	lo, hi := 0, len(weights)-1
	if !feasibleAt(weights[hi]) {
		return nil, 0, 0, ErrInfeasible
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if feasibleAt(weights[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	bottleneck := weights[lo]

	// Hungarian on the thresholded cost matrix minimizes total cost subject
	// to the bottleneck (Section 8.1.2's second step).
	thr := make([][]float64, n)
	for i := range thr {
		thr[i] = make([]float64, n)
		for j := range thr[i] {
			if !forbidden(cost[i][j]) && cost[i][j] <= bottleneck {
				thr[i][j] = cost[i][j]
			} else {
				thr[i][j] = Forbidden
			}
		}
	}
	assign, total, err := Hungarian(thr)
	if err != nil {
		return nil, 0, 0, err
	}
	return assign, bottleneck, total, nil
}

var errNotSquare = errors.New("matching: cost matrix not square")

func dedupFloats(xs []float64) []float64 {
	out := xs[:0]
	for i, x := range xs {
		//lint:ignore floatcmp exact dedup of sorted threshold weights; merging near-equal thresholds would change the binary search lattice
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}
