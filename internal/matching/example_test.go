package matching_test

import (
	"fmt"

	"hipo/internal/matching"
)

// ExampleHungarian assigns three chargers to three new positions at
// minimum total relocation cost.
func ExampleHungarian() {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	assign, total, err := matching.Hungarian(cost)
	if err != nil {
		panic(err)
	}
	fmt.Println("assignment:", assign, "total:", total)
	// Output: assignment: [1 0 2] total: 5
}

// ExampleBottleneck finds the matching minimizing the worst single move.
func ExampleBottleneck() {
	cost := [][]float64{
		{10, 3},
		{4, 9},
	}
	_, bottleneck, total, err := matching.Bottleneck(cost)
	if err != nil {
		panic(err)
	}
	fmt.Printf("bottleneck: %v total: %v\n", bottleneck, total)
	// Output: bottleneck: 4 total: 7
}
