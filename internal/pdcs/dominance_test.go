package pdcs

// Theorem 4.1 states that for ANY strategy there exists an extracted
// candidate whose covered device set dominates (is a superset of) the
// strategy's. These tests probe that guarantee empirically with large
// numbers of random strategies on scenarios with and without obstacles.

import (
	"math"
	"math/rand"
	"testing"

	"hipo/internal/geom"
	"hipo/internal/model"
	"hipo/internal/power"
)

// coveredSet returns the devices a strategy charges with positive exact
// power.
func coveredSet(sc *model.Scenario, s model.Strategy) []int {
	var out []int
	for j := range sc.Devices {
		if power.Exact(sc, s, j) > 0 {
			out = append(out, j)
		}
	}
	return out
}

func isSubset(a, b []int) bool {
	i := 0
	for _, x := range a {
		for i < len(b) && b[i] < x {
			i++
		}
		if i >= len(b) || b[i] != x {
			return false
		}
	}
	return true
}

func dominanceScenario(rng *rand.Rand, withObstacle bool) *model.Scenario {
	sc := &model.Scenario{
		Region: model.Region{Min: geom.V(0, 0), Max: geom.V(30, 30)},
		ChargerTypes: []model.ChargerType{
			{Name: "c", Alpha: math.Pi / 2, DMin: 2, DMax: 8, Count: 2},
		},
		DeviceTypes: []model.DeviceType{
			{Name: "d", Alpha: math.Pi, PTh: 0.05},
		},
		Power: [][]model.PowerParams{{{A: 100, B: 40}}},
	}
	if withObstacle {
		sc.Obstacles = []model.Obstacle{{Shape: geom.Rect(13, 13, 17, 17)}}
	}
	for len(sc.Devices) < 6 {
		p := geom.V(5+rng.Float64()*20, 5+rng.Float64()*20)
		if !sc.FeasiblePosition(p) {
			continue
		}
		sc.Devices = append(sc.Devices, model.Device{
			Pos: p, Orient: rng.Float64() * 2 * math.Pi, Type: 0,
		})
	}
	return sc
}

// testDominance checks, for nProbes random strategies, that some extracted
// candidate's covered set is a superset. It returns the number of
// violations so callers can assert exact-zero or near-zero depending on the
// numerical hardness of the configuration.
func testDominance(t *testing.T, sc *model.Scenario, nProbes int, rng *rand.Rand) int {
	t.Helper()
	cands := Extract(sc, 0, Config{Eps1: 0.4})
	sets := make([][]int, len(cands))
	for i, c := range cands {
		for _, dp := range c.Covers {
			sets[i] = append(sets[i], dp.Device)
		}
	}
	violations := 0
	for probe := 0; probe < nProbes; probe++ {
		s := model.Strategy{
			Pos:    geom.V(rng.Float64()*30, rng.Float64()*30),
			Orient: rng.Float64() * 2 * math.Pi,
			Type:   0,
		}
		if !sc.FeasiblePosition(s.Pos) {
			continue
		}
		cov := coveredSet(sc, s)
		if len(cov) == 0 {
			continue
		}
		dominated := false
		for _, set := range sets {
			if isSubset(cov, set) {
				dominated = true
				break
			}
		}
		if !dominated {
			violations++
		}
	}
	return violations
}

// TestTheorem41NoObstacles: without obstacles the critical-point
// enumeration is complete and every random strategy must be dominated.
func TestTheorem41NoObstacles(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 4; trial++ {
		sc := dominanceScenario(rng, false)
		if v := testDominance(t, sc, 3000, rng); v > 0 {
			t.Errorf("trial %d: %d random strategies not dominated by any candidate", trial, v)
		}
	}
}

// TestTheorem41WithObstacles: with obstacles, hole boundaries join the
// arrangement; the enumeration must still dominate random strategies.
func TestTheorem41WithObstacles(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 4; trial++ {
		sc := dominanceScenario(rng, true)
		if v := testDominance(t, sc, 3000, rng); v > 0 {
			t.Errorf("trial %d: %d random strategies not dominated by any candidate", trial, v)
		}
	}
}
