// Metamorphic properties of the pruned extraction pipeline: inserting an
// obstacle can only shrink coverage, permuting devices only relabels it,
// and the pair-pruning counter is honest about when it engages.
package pdcs_test

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"hipo/internal/expt"
	"hipo/internal/geom"
	"hipo/internal/hipotrace"
	"hipo/internal/model"
	"hipo/internal/pdcs"
	"hipo/internal/power"
)

// omniScenario builds a scenario with one omnidirectional charger type, so
// every candidate position yields exactly one candidate (orientation-free)
// and positions are directly comparable across runs. The vertical wall
// splits the region; extraCross adds a horizontal wall through the middle
// that blocks many previously clear rays.
func omniScenario(extraCross bool) *model.Scenario {
	sc := &model.Scenario{
		Region: model.Region{Min: geom.V(0, 0), Max: geom.V(40, 40)},
		ChargerTypes: []model.ChargerType{
			{Name: "omni", Alpha: 2 * math.Pi, DMin: 1, DMax: 12, Count: 2},
		},
		DeviceTypes: []model.DeviceType{{Name: "d", Alpha: 2 * math.Pi, PTh: 0.05}},
		Power:       [][]model.PowerParams{{{A: 100, B: 40}}},
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 12; i++ {
		sc.Devices = append(sc.Devices, model.Device{
			Pos:  geom.V(5+30*rng.Float64(), 5+30*rng.Float64()),
			Type: 0,
		})
	}
	sc.Obstacles = []model.Obstacle{{Shape: geom.Rect(19, 8, 21, 32)}}
	if extraCross {
		sc.Obstacles = append(sc.Obstacles, model.Obstacle{Shape: geom.Rect(8, 19, 32, 21)})
	}
	return sc
}

// coverKey identifies a candidate by exact position and orientation bits.
func coverKey(c pdcs.Candidate) string {
	return fmt.Sprintf("%x/%x/%x/%d",
		math.Float64bits(c.S.Pos.X), math.Float64bits(c.S.Pos.Y),
		math.Float64bits(c.S.Orient), c.S.Type)
}

// TestMetamorphicObstacleInsertionMonotone checks that inserting an
// obstacle never grows coverage with the pruned pipeline: at every candidate
// position common to both runs, the covered device set with the extra
// obstacle is a subset of the one without, at identical power bits.
func TestMetamorphicObstacleInsertionMonotone(t *testing.T) {
	eps1 := power.Eps1ForEps(wallEps)
	cfg := pdcs.Config{Eps1: eps1, SkipDominanceFilter: true}
	base := extractWith(omniScenario(false), cfg)
	more := extractWith(omniScenario(true), cfg)

	covers := func(out [][]pdcs.Candidate) map[string]map[int]uint64 {
		m := map[string]map[int]uint64{}
		for _, cs := range out {
			for _, c := range cs {
				cov := map[int]uint64{}
				for _, dp := range c.Covers {
					cov[dp.Device] = math.Float64bits(dp.Power)
				}
				m[coverKey(c)] = cov
			}
		}
		return m
	}
	baseCov, moreCov := covers(base), covers(more)

	common, shrunk := 0, 0
	for k, cov := range moreCov {
		ref, ok := baseCov[k]
		if !ok {
			continue // position introduced by the new obstacle's ring cuts
		}
		common++
		for dev, pw := range cov {
			refPw, ok := ref[dev]
			if !ok {
				t.Fatalf("position %s: device %d covered only WITH the extra obstacle", k, dev)
			}
			if refPw != pw {
				t.Fatalf("position %s: device %d power changed bits under obstacle insertion", k, dev)
			}
		}
		if len(cov) < len(ref) {
			shrunk++
		}
	}
	if common == 0 {
		t.Fatal("no candidate positions shared between the two runs — the check is vacuous")
	}
	if shrunk == 0 {
		t.Fatal("extra cross obstacle blocked nothing — the scenario is not exercising occlusion")
	}
}

// TestMetamorphicDevicePermutationEquivariance reverses the device list and
// checks the pruned pipeline's raw coverage structure is unchanged up to
// relabeling: the same multiset of (position, type, covered original
// devices at identical power bits). The representative orientation is
// deliberately excluded from the key: when several boundary orientations
// attain the same coverage set, the sweep's first-wins dedup keeps the one
// reached first in device-index order (seed-faithful behavior), so φ is
// equivariant only up to that tie.
func TestMetamorphicDevicePermutationEquivariance(t *testing.T) {
	eps1 := power.Eps1ForEps(wallEps)
	cfg := pdcs.Config{Eps1: eps1, SkipDominanceFilter: true}
	sc := expt.BenchScenario(5, 8, 2)
	perm := sc.Clone()
	n := len(perm.Devices)
	for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
		perm.Devices[i], perm.Devices[j] = perm.Devices[j], perm.Devices[i]
	}

	multiset := func(out [][]pdcs.Candidate, unpermute bool) map[string]int {
		m := map[string]int{}
		for _, cs := range out {
			for _, c := range cs {
				type dv struct {
					dev int
					pw  uint64
				}
				cov := make([]dv, 0, len(c.Covers))
				for _, dp := range c.Covers {
					dev := dp.Device
					if unpermute {
						dev = n - 1 - dev
					}
					cov = append(cov, dv{dev, math.Float64bits(dp.Power)})
				}
				sort.Slice(cov, func(a, b int) bool { return cov[a].dev < cov[b].dev })
				// Quantize the position at the discretize.Dedup tolerance:
				// when several near-identical ring intersections fall in one
				// 1e-6 bucket, the deduper keeps whichever was generated
				// first, and generation order follows device order.
				m[fmt.Sprintf("%d/%d/%d|%v",
					int64(math.Round(c.S.Pos.X/1e-6)), int64(math.Round(c.S.Pos.Y/1e-6)), c.S.Type, cov)]++
			}
		}
		return m
	}
	orig := multiset(extractWith(sc, cfg), false)
	back := multiset(extractWith(perm, cfg), true)
	if len(orig) != len(back) {
		t.Fatalf("candidate multisets differ in size: %d vs %d", len(orig), len(back))
	}
	for k, cnt := range orig {
		if back[k] != cnt {
			t.Fatalf("candidate %s: count %d original vs %d permuted", k, cnt, back[k])
		}
	}
}

// TestPairsPrunedCounter checks the honesty of the pairs_pruned counter:
// zero when every device pair interacts (a tight cluster inside one grid
// neighborhood), positive on a spread-out field — where the pruned run must
// still match the seed pipeline bit for bit.
func TestPairsPrunedCounter(t *testing.T) {
	eps1 := power.Eps1ForEps(wallEps)

	cluster := omniScenario(false)
	cluster.Obstacles = nil
	for i := range cluster.Devices {
		// Everything within a radius-2 disk: 2·DMax dwarfs every pairwise
		// distance, so no pair may be pruned.
		theta := 2 * math.Pi * float64(i) / float64(len(cluster.Devices))
		cluster.Devices[i].Pos = geom.V(20, 20).Add(geom.FromAngle(theta).Scale(2))
	}
	tr := hipotrace.New()
	extractWith(cluster, pdcs.Config{Eps1: eps1, Tracer: tr})
	if got := tr.Breakdown().Counters["pairs_pruned"]; got != 0 {
		t.Fatalf("pairs_pruned = %d on an all-pairs-interacting cluster, want 0", got)
	}

	spread := omniScenario(false)
	spread.ChargerTypes[0].DMax = 4 // 2·DMax = 8 ≪ the 30-unit device spread
	tr = hipotrace.New()
	pruned := extractWith(spread, pdcs.Config{Eps1: eps1, Tracer: tr})
	if got := tr.Breakdown().Counters["pairs_pruned"]; got == 0 {
		t.Fatal("pairs_pruned = 0 on a spread-out field, pruning never engaged")
	}
	ref := extractWith(spread, seedConfig(eps1))
	if !candidatesBitIdentical(ref, pruned) {
		t.Fatal("pruned extraction diverged from seed pipeline on the spread field")
	}
}
