package pdcs

import (
	"math"
	"sort"
)

// streamReducer discards, while candidates stream out of the chunked sweep,
// candidates that FilterDominated provably discards — so the overhauled
// extraction never holds the full raw candidate set (hundreds of thousands
// at benchmark scale) through to the global dominance filter. The final
// output after running FilterDominated over the survivors is bit-for-bit
// identical to running it over the whole raw stream.
//
// Why dropping is safe. FilterDominated processes candidates in stable
// order of decreasing total power (ties resolve to stream order) and drops
// x when an already-kept k with total ≥ total(x) − 1e-15 covers a superset
// of x's devices with per-device power ≥ x's − 1e-15. The reducer uses two
// strictly stronger, zero-slack rules:
//
//  1. Exact duplicate: some earlier y has the same charger type and a
//     bitwise-identical Covers list. If the filter keeps y, then y (sorted
//     before x: equal totals, earlier stream position) dominates x, so x is
//     dropped. If the filter drops y via some kept k, then k's powers are
//     ≥ y's − 1e-15 = x's − 1e-15, k's total is ≥ total(y) − 1e-15 =
//     total(x) − 1e-15 (so x's scan reaches k before its early break), and
//     k sorts before y and hence before x — so k drops x too.
//
//  2. Strict domination: some y (either stream direction) with
//     total(y) > total(x), or total(y) == total(x) and an earlier stream
//     position, covers a superset of x's devices with per-device power ≥
//     x's, compared exactly. y sorts strictly before x. If the filter keeps
//     y it drops x directly; if it drops y via kept k, the same chaining as
//     above gives k's powers ≥ x's − 1e-15 and total(k) ≥ total(x) − 1e-15
//     with k sorted before x, so k drops x. The single chaining step is
//     what keeps the 1e-15 slack from compounding — the reducer's own
//     comparisons carry no slack at all.
//
// Removing such candidates from the filter's input changes neither which
// remaining candidates are kept (kept candidates never consult dropped
// ones) nor their order, so the survivors' filtered output is identical.
type streamReducer struct {
	words  int
	raw    int // stream length so far
	thresh int // ents length that triggers the next reduce pass
	ents   []reduceEnt
	seen   map[uint64][]Candidate

	// reduce-pass scratch, reused across passes.
	bits    []uint64
	byDev   [][]int32
	keptIdx []int32
}

type reduceEnt struct {
	cand  Candidate
	total float64
	seq   int32
}

// reduceTrigger is the entry count that schedules a dominance pass; between
// passes the reducer only performs O(1) duplicate probes per candidate.
const reduceTrigger = 8192

func newStreamReducer(no int) *streamReducer {
	return &streamReducer{
		words:  (no + 63) / 64,
		thresh: reduceTrigger,
		seen:   make(map[uint64][]Candidate),
		byDev:  make([][]int32, no),
	}
}

// add feeds the next candidate of the raw stream (in sweep output order).
func (r *streamReducer) add(c Candidate) {
	seq := int32(r.raw)
	r.raw++
	h := covHash(&c)
	for i := range r.seen[h] {
		if sameCoverAndType(&r.seen[h][i], &c) {
			return // rule 1: an identical earlier candidate wins the tie
		}
	}
	r.seen[h] = append(r.seen[h], c)
	r.ents = append(r.ents, reduceEnt{cand: c, total: c.TotalPower(), seq: seq})
	if len(r.ents) >= r.thresh {
		r.reduce()
		r.thresh = max(reduceTrigger, 2*len(r.ents))
	}
}

// reduce runs one zero-slack dominance pass over the current entries.
//
//hipo:order-invariant the seq tiebreak makes the dominance sort total, so the kept set is identical for every arrival interleaving of the same candidate stream
func (r *streamReducer) reduce() {
	// Exactly FilterDominated's stable processing order, made total by the
	// explicit stream-position tiebreak.
	sort.Slice(r.ents, func(a, b int) bool {
		//lint:ignore floatcmp the reducer's safety proof is against FilterDominated's exact stable sort order, so the tiebreak must engage on exact total equality — a tolerance here would be unsound
		if r.ents[a].total != r.ents[b].total {
			return r.ents[a].total > r.ents[b].total
		}
		return r.ents[a].seq < r.ents[b].seq
	})
	w := r.words
	if need := len(r.ents) * w; cap(r.bits) < need {
		r.bits = make([]uint64, need)
	} else {
		r.bits = r.bits[:need]
		clear(r.bits)
	}
	for i := range r.ents {
		for _, dp := range r.ents[i].cand.Covers {
			r.bits[i*w+dp.Device/64] |= 1 << (uint(dp.Device) % 64)
		}
	}
	for d := range r.byDev {
		r.byDev[d] = r.byDev[d][:0]
	}
	r.keptIdx = r.keptIdx[:0]
	for i := range r.ents {
		x := &r.ents[i]
		if len(x.cand.Covers) == 0 {
			r.keptIdx = append(r.keptIdx, int32(i))
			continue
		}
		bx := r.bits[i*w : i*w+w]
		dominated := false
		// Any dominator covers all of x's devices, in particular the first
		// one — probing that device's inverted list touches a handful of
		// survivors instead of the whole kept set.
		for _, k := range r.byDev[x.cand.Covers[0].Device] {
			y := &r.ents[k]
			if y.cand.S.Type == x.cand.S.Type &&
				bitsSubset(bx, r.bits[int(k)*w:int(k)*w+w]) &&
				powersCoveredExact(x.cand.Covers, y.cand.Covers) {
				dominated = true // rule 2: y sorted strictly before x
				break
			}
		}
		if dominated {
			continue
		}
		r.keptIdx = append(r.keptIdx, int32(i))
		for _, dp := range x.cand.Covers {
			r.byDev[dp.Device] = append(r.byDev[dp.Device], int32(i))
		}
	}
	out := r.ents[:0] // keptIdx ascends, so in-place compaction is safe
	for _, i := range r.keptIdx {
		out = append(out, r.ents[i])
	}
	r.ents = out
}

// final returns the surviving candidates in original stream order, ready
// for the exact FilterDominated pass.
func (r *streamReducer) final() []Candidate {
	sort.Slice(r.ents, func(a, b int) bool { return r.ents[a].seq < r.ents[b].seq })
	out := make([]Candidate, len(r.ents))
	for i := range r.ents {
		out[i] = r.ents[i].cand
	}
	return out
}

// powersCoveredExact reports whether every covered power in a is ≤ the
// corresponding power in b with zero tolerance — the slack-free counterpart
// of powersDominated (the caller checks the device subset via bitsets).
func powersCoveredExact(a, b []DevPower) bool {
	i := 0
	for _, x := range a {
		for i < len(b) && b[i].Device < x.Device {
			i++
		}
		if i >= len(b) || b[i].Device != x.Device || b[i].Power < x.Power {
			return false
		}
	}
	return true
}

// sameCoverAndType reports whether two candidates have the same charger
// type and bitwise-identical Covers.
func sameCoverAndType(a, b *Candidate) bool {
	if a.S.Type != b.S.Type || len(a.Covers) != len(b.Covers) {
		return false
	}
	for i := range a.Covers {
		if a.Covers[i].Device != b.Covers[i].Device ||
			math.Float64bits(a.Covers[i].Power) != math.Float64bits(b.Covers[i].Power) {
			return false
		}
	}
	return true
}

// covHash is an FNV-1a hash of a candidate's charger type and Covers,
// keying the exact-duplicate probe of rule 1.
func covHash(c *Candidate) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		h ^= v
		h *= prime
	}
	mix(uint64(c.S.Type))
	for _, dp := range c.Covers {
		mix(uint64(dp.Device))
		mix(math.Float64bits(dp.Power))
	}
	return h
}
