package pdcs

import (
	"math"
	"time"

	"hipo/internal/discretize"
	"hipo/internal/geom"
	"hipo/internal/hipotrace"
	"hipo/internal/model"
	"hipo/internal/schedule"
)

// TaskOutput is the result of one distributed PDCS extraction task
// (Algorithm 4): candidate strategies generated from one device's
// neighbor-set workload across all charger types, plus the measured serial
// duration used for makespan simulation (zero with a nil cfg.Clock).
type TaskOutput struct {
	Device     int
	Candidates []Candidate
	Duration   time.Duration
}

// RunTask executes the distributed-extraction task for device i: for every
// charger type, generate device i's own critical positions plus the pair
// constructions with larger-indexed neighbors, and sweep each position
// (Algorithm 4 delegates to Algorithms 1 and 2). gens caches one Generator
// per charger type.
func RunTask(sc *model.Scenario, gens []*discretize.Generator, i int, cfg Config) TaskOutput {
	return runTask(sc, gens, newEligibleCaches(sc, cfg), i, cfg)
}

func newEligibleCaches(sc *model.Scenario, cfg Config) []*eligibleCache {
	caches := make([]*eligibleCache, len(sc.ChargerTypes))
	for q := range caches {
		caches[q] = newEligibleCache(sc, q, cfg)
		caches[q].tracer = cfg.Tracer
	}
	return caches
}

// runTask is RunTask against shared per-type eligibility caches, so a
// whole distributed run reuses one power-level table, device grid, and
// viewpoint tiling per charger type instead of rebuilding them per task.
func runTask(sc *model.Scenario, gens []*discretize.Generator, caches []*eligibleCache, i int, cfg Config) TaskOutput {
	var start time.Time
	if cfg.Clock != nil {
		start = cfg.Clock()
	}
	var cands []Candidate
	for q := range sc.ChargerTypes {
		pts := discretize.Dedup(gens[q].TaskPositions(i))
		pts = gens[q].FilterUseful(pts)
		ar, _ := caches[q].getArena()
		scr := sweepScratch{ar: ar}
		for _, p := range pts {
			cands = sweepPointAppend(sc, q, p, caches[q], &scr, cands)
		}
		caches[q].putArena(ar)
	}
	var dur time.Duration
	if cfg.Clock != nil {
		dur = cfg.Clock().Sub(start)
	}
	return TaskOutput{Device: i, Candidates: cands, Duration: dur}
}

// DistStats reports the timing of a distributed extraction run.
type DistStats struct {
	// TaskSeconds[i] is task i's cost: the measured serial duration when
	// cfg.Clock is set, otherwise the deterministic TaskCost estimate from
	// internal/discretize (arbitrary units) — the same cost model that
	// ordered the worker pool's hand-out.
	TaskSeconds []float64
	// SerialSeconds is Σ TaskSeconds: the non-distributed cost of the
	// parallel-processing part.
	SerialSeconds float64
	// MakespanSeconds[m] is the simulated LPT makespan with m machines, for
	// each requested machine count, over the same TaskSeconds.
	MakespanSeconds map[int]float64
}

// ExtractDistributed implements Algorithm 5: it splits PDCS extraction into
// per-device tasks, runs them on a worker pool of size workers (0 =
// serial measurement only), and simulates the LPT makespan for every
// machine count in machineCounts. When the number of machines is at least
// the number of devices, each task gets its own machine, as in Algorithm 5
// line 1. Candidates are merged per charger type in task order — so output
// is independent of worker count and hand-out order — deduplicated, and
// dominance-filtered.
//
// One cost model drives all scheduling: discretize.TaskCost summed across
// charger types orders the live pool's hand-out (LPT), and the same
// estimates back the makespan simulation when no Clock measures real
// durations.
func ExtractDistributed(sc *model.Scenario, cfg Config, workers int, machineCounts []int) ([][]Candidate, DistStats) {
	sc = cfg.ensureVisibility(sc)
	no := len(sc.Devices)
	gens := make([]*discretize.Generator, len(sc.ChargerTypes))
	dcfg := discretize.Config{
		Eps1:                  cfg.Eps1,
		SkipPairConstructions: cfg.SkipPairConstructions,
		NoPairPruning:         cfg.NoPairPruning,
		BruteForceVisibility:  cfg.BruteForceVisibility,
		Tracer:                cfg.Tracer,
	}
	for q := range gens {
		gens[q] = discretize.NewGenerator(sc, q, dcfg)
	}
	caches := newEligibleCaches(sc, cfg)
	if workers <= 0 {
		workers = 1
	}
	est := make([]schedule.Task, no)
	for i := range est {
		cost := 0.0
		for q := range gens {
			cost += gens[q].TaskCost(i)
		}
		est[i] = schedule.Task{ID: i, Duration: cost}
	}
	// Distributed tasks interleave discretization and sweeping per device, so
	// the whole fan-out is one pdcs span rather than per-stage spans.
	endSweep := cfg.Tracer.StartStage(hipotrace.StagePDCS, "distributed")
	outs := schedule.RunPoolOrdered(no, workers, schedule.LPTOrder(est), func(i int) TaskOutput {
		return runTask(sc, gens, caches, i, cfg)
	})
	endSweep()

	stats := DistStats{
		TaskSeconds:     make([]float64, no),
		MakespanSeconds: make(map[int]float64),
	}
	tasks := make([]schedule.Task, no)
	for i, o := range outs {
		if cfg.Clock != nil {
			stats.TaskSeconds[i] = o.Duration.Seconds()
		} else {
			stats.TaskSeconds[i] = est[i].Duration
		}
		stats.SerialSeconds += stats.TaskSeconds[i]
		tasks[i] = schedule.Task{ID: i, Duration: stats.TaskSeconds[i]}
	}
	for _, m := range machineCounts {
		if m >= no {
			// One task per machine: makespan is the longest task.
			longest := 0.0
			for _, t := range tasks {
				if t.Duration > longest {
					longest = t.Duration
				}
			}
			stats.MakespanSeconds[m] = longest
			continue
		}
		stats.MakespanSeconds[m] = schedule.LPT(tasks, m).Makespan()
	}

	// Merge per charger type, deduplicate positions produced by distinct
	// tasks, and dominance-filter.
	byType := make([][]Candidate, len(sc.ChargerTypes))
	for _, o := range outs {
		for _, c := range o.Candidates {
			byType[c.S.Type] = append(byType[c.S.Type], c)
		}
	}
	for q := range byType {
		cfg.Tracer.Add(hipotrace.CtrCandidatesRaw, int64(len(byType[q])))
		byType[q] = dedupCandidates(byType[q])
		if !cfg.SkipDominanceFilter {
			byType[q] = FilterDominated(byType[q], no)
		}
		cfg.Tracer.Add(hipotrace.CtrCandidatesKept, int64(len(byType[q])))
		// Survivors escape to the caller; detach them from the task arenas.
		detachCovers(byType[q])
	}
	return byType, stats
}

// dedupCandidates removes candidates with near-identical strategies using
// quantized (position, orientation) keys.
func dedupCandidates(cands []Candidate) []Candidate {
	type key struct{ x, y, o int64 }
	seen := make(map[key]bool, len(cands))
	quant := func(v float64) int64 { return int64(math.Round(v / 1e-6)) }
	out := cands[:0]
	for i := range cands {
		k := key{quant(cands[i].S.Pos.X), quant(cands[i].S.Pos.Y), quant(geom.NormAngle(cands[i].S.Orient))}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, cands[i])
	}
	return out
}
