// Bit-identity tests for the incremental sweep surface (Sweeper,
// ReduceCandidates): per-position sweep outputs reassembled in position
// order must reproduce Extract exactly, including when the positions were
// swept in separate batches — the caching contract internal/incremental
// builds on.
package pdcs_test

import (
	"fmt"
	"testing"

	"hipo/internal/corpus"
	"hipo/internal/discretize"
	"hipo/internal/expt"
	"hipo/internal/geom"
	"hipo/internal/model"
	"hipo/internal/pdcs"
	"hipo/internal/power"
	"hipo/internal/visindex"
)

// sweepReassemble runs the incremental surface end to end on a fresh clone:
// cold positions, per-position sweeps, reduction in position order.
func sweepReassemble(sc *model.Scenario, q int, cfg pdcs.Config, batches int) []pdcs.Candidate {
	sc = visindex.Ensure(sc.Clone())
	positions := discretize.CandidatePositions(sc, q, discretize.Config{
		Eps1: cfg.Eps1, Workers: cfg.Workers,
	})
	sw := pdcs.NewSweeper(sc, q, cfg)
	perPos := make([][]pdcs.Candidate, len(positions))
	// Sweep the positions in `batches` interleaved subsets to model cache
	// misses scattered across the position list, then slot each batch's
	// outputs back by original index.
	for b := 0; b < batches; b++ {
		var idx []int
		for i := b; i < len(positions); i += batches {
			idx = append(idx, i)
		}
		sub := make([]geom.Vec, 0, len(idx))
		for _, i := range idx {
			sub = append(sub, positions[i])
		}
		out := sw.SweepPositions(sub)
		for k, i := range idx {
			perPos[i] = out[k]
		}
	}
	return pdcs.ReduceCandidates(perPos, len(sc.Devices))
}

// TestSweeperMatchesExtract pins the Sweeper/ReduceCandidates contract
// against Extract across corpus families: identical candidates bit for bit,
// whether the positions are swept in one pass or in interleaved batches.
func TestSweeperMatchesExtract(t *testing.T) {
	eps1 := power.Eps1ForEps(wallEps)
	for _, fam := range []string{"mixed-type", "clustered-devices", "dense-obstacles"} {
		for i := 0; i < 2; i++ {
			t.Run(fmt.Sprintf("%s/%d", fam, i), func(t *testing.T) {
				sc, err := corpus.BuildModel(11, fam, i)
				if err != nil {
					t.Fatal(err)
				}
				testSweeperScenario(t, sc, eps1)
			})
		}
	}
	t.Run("bench-scenario", func(t *testing.T) {
		testSweeperScenario(t, expt.BenchScenario(3, 10, 2), eps1)
	})
}

func testSweeperScenario(t *testing.T, sc *model.Scenario, eps1 float64) {
	t.Helper()
	for q := range sc.ChargerTypes {
		cfg := pdcs.Config{Eps1: eps1, Workers: 4}
		ref := pdcs.Extract(visindex.Ensure(sc.Clone()), q, cfg)
		for _, batches := range []int{1, 3} {
			got := sweepReassemble(sc, q, cfg, batches)
			if !candidatesBitIdentical([][]pdcs.Candidate{ref}, [][]pdcs.Candidate{got}) {
				t.Fatalf("type %d: sweep-reassemble (batches=%d) diverged from Extract", q, batches)
			}
		}
	}
}
