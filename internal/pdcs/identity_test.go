// The bit-identity test wall gating the extraction overhaul: every corpus
// family is swept through the preserved seed pipeline and the overhauled
// parallel-pruned-pooled one, and the outputs must agree bit for bit.
//
// This file is an external test package so it can import internal/corpus,
// which depends on the public hipo API and hence, transitively, on pdcs
// itself — legal only from a _test package.
package pdcs_test

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"hipo/internal/corpus"
	"hipo/internal/expt"
	"hipo/internal/model"
	"hipo/internal/pdcs"
	"hipo/internal/power"
	"hipo/internal/visindex"
)

// wallEps is the public ε the wall solves at; Eps1ForEps maps it to the
// extraction's ε₁ exactly like the solver does.
const wallEps = 0.3

// seedConfig selects the faithfully preserved pre-overhaul pipeline: full
// device scans, per-ray grid walks, fresh allocations.
func seedConfig(eps1 float64) pdcs.Config {
	return pdcs.Config{Eps1: eps1, Workers: 1, NoPairPruning: true, NoBatchedLOS: true}
}

// extractWith runs ExtractAll on a fresh clone with its own visibility
// index, so no memoized state leaks between arms.
func extractWith(sc *model.Scenario, cfg pdcs.Config) [][]pdcs.Candidate {
	return pdcs.ExtractAll(visindex.Ensure(sc.Clone()), cfg)
}

// candidatesBitIdentical compares two per-type candidate sets bit for bit:
// same order, same strategies, same coverage lists, Float64bits-equal
// floats throughout.
func candidatesBitIdentical(a, b [][]pdcs.Candidate) bool {
	if len(a) != len(b) {
		return false
	}
	for q := range a {
		if len(a[q]) != len(b[q]) {
			return false
		}
		for i := range a[q] {
			x, y := a[q][i], b[q][i]
			if math.Float64bits(x.S.Pos.X) != math.Float64bits(y.S.Pos.X) ||
				math.Float64bits(x.S.Pos.Y) != math.Float64bits(y.S.Pos.Y) ||
				math.Float64bits(x.S.Orient) != math.Float64bits(y.S.Orient) ||
				x.S.Type != y.S.Type || len(x.Covers) != len(y.Covers) {
				return false
			}
			for m := range x.Covers {
				if x.Covers[m].Device != y.Covers[m].Device ||
					math.Float64bits(x.Covers[m].Power) != math.Float64bits(y.Covers[m].Power) {
					return false
				}
			}
		}
	}
	return true
}

// TestBitIdentityWall sweeps two scenarios from every corpus family through
// the seed pipeline and the overhauled one (at one and four workers) and
// requires ScenarioHash-keyed bit-identical candidate sets.
func TestBitIdentityWall(t *testing.T) {
	eps1 := power.Eps1ForEps(wallEps)
	const perFamily = 2
	seen := map[string]bool{}
	for _, fam := range corpus.Names() {
		for i := 0; i < perFamily; i++ {
			t.Run(fmt.Sprintf("%s/%d", fam, i), func(t *testing.T) {
				sc, err := corpus.BuildModel(7, fam, i)
				if err != nil {
					t.Fatal(err)
				}
				hash, err := corpus.ToPublic(sc).ScenarioHash()
				if err != nil {
					t.Fatal(err)
				}
				seen[hash] = true
				ref := extractWith(sc, seedConfig(eps1))
				for _, w := range []int{1, 4} {
					got := extractWith(sc, pdcs.Config{Eps1: eps1, Workers: w})
					if !candidatesBitIdentical(ref, got) {
						t.Fatalf("scenario %s: overhauled extraction (workers=%d) diverged from seed pipeline", hash, w)
					}
				}
			})
		}
	}
	if len(seen) < len(corpus.Names()) {
		t.Fatalf("only %d distinct scenario hashes across %d families — the wall is not covering the corpus",
			len(seen), len(corpus.Names()))
	}
}

// TestExtractRaceHammer re-runs the overhauled parallel extraction under
// several GOMAXPROCS settings against a fixed sequential reference. Under
// the race detector (CI runs go test -race ./...) this hammers the chunked
// worker pool, the shared viewpoint-grid memos, and the arena pool.
func TestExtractRaceHammer(t *testing.T) {
	sc := expt.BenchScenario(3, 12, 2)
	eps1 := power.Eps1ForEps(wallEps)
	ref := extractWith(sc, seedConfig(eps1))
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	for _, procs := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(procs)
		for rep := 0; rep < 3; rep++ {
			got := extractWith(sc, pdcs.Config{Eps1: eps1, Workers: 8})
			if !candidatesBitIdentical(ref, got) {
				t.Fatalf("GOMAXPROCS=%d rep=%d: parallel extraction diverged from sequential seed reference", procs, rep)
			}
		}
	}
}
