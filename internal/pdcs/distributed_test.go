package pdcs

import (
	"math"
	"testing"
	"time"

	"hipo/internal/discretize"
	"hipo/internal/geom"
	"hipo/internal/model"
)

func TestRunTaskCoversOwnDevice(t *testing.T) {
	sc := ringScenario()
	cfg := Config{Eps1: 0.4}
	gens := []*discretize.Generator{
		discretize.NewGenerator(sc, 0, discretize.Config{Eps1: cfg.Eps1}),
	}
	out := RunTask(sc, gens, 0, cfg)
	if out.Device != 0 {
		t.Errorf("device = %d", out.Device)
	}
	if len(out.Candidates) == 0 {
		t.Fatal("task produced no candidates")
	}
	found := false
	for _, c := range out.Candidates {
		for _, dp := range c.Covers {
			if dp.Device == 0 {
				found = true
			}
		}
	}
	if !found {
		t.Error("task for device 0 never covers device 0")
	}
}

func TestExtractDistributedMatchesSerialUnion(t *testing.T) {
	sc := ringScenario()
	cfg := Config{Eps1: 0.4, Clock: time.Now}
	serial := Extract(sc, 0, cfg)
	dist, stats := ExtractDistributed(sc, cfg, 4, []int{1, 2, 4})
	if len(dist) != 1 {
		t.Fatalf("per-type buckets = %d", len(dist))
	}
	// The distributed extraction must reach the same best coverage quality:
	// compare the maximum covered-set size and maximum total power.
	maxCover := func(cs []Candidate) (int, float64) {
		n, p := 0, 0.0
		for _, c := range cs {
			if len(c.Covers) > n {
				n = len(c.Covers)
			}
			if tp := c.TotalPower(); tp > p {
				p = tp
			}
		}
		return n, p
	}
	sn, sp := maxCover(serial)
	dn, dp := maxCover(dist[0])
	if dn < sn {
		t.Errorf("distributed best cover %d below serial %d", dn, sn)
	}
	if dp < sp-1e-12 {
		t.Errorf("distributed best power %v below serial %v", dp, sp)
	}
	// Timing stats are self-consistent.
	if len(stats.TaskSeconds) != len(sc.Devices) {
		t.Errorf("task seconds = %d entries", len(stats.TaskSeconds))
	}
	sum := 0.0
	for _, s := range stats.TaskSeconds {
		if s < 0 {
			t.Error("negative task time")
		}
		sum += s
	}
	if math.Abs(sum-stats.SerialSeconds) > 1e-9 {
		t.Error("serial time != Σ task times")
	}
	// Makespan decreases (weakly) with machines and never beats the longest
	// task.
	if stats.MakespanSeconds[2] > stats.MakespanSeconds[1]+1e-12 {
		t.Error("makespan grew with machines")
	}
	if stats.MakespanSeconds[4] > stats.MakespanSeconds[2]+1e-12 {
		t.Error("makespan grew with machines")
	}
}

func TestExtractDistributedManyMachines(t *testing.T) {
	sc := ringScenario()
	_, stats := ExtractDistributed(sc, Config{Eps1: 0.4, Clock: time.Now}, 2, []int{100})
	longest := 0.0
	for _, s := range stats.TaskSeconds {
		if s > longest {
			longest = s
		}
	}
	if math.Abs(stats.MakespanSeconds[100]-longest) > 1e-12 {
		t.Errorf("m≥No makespan should equal longest task: %v vs %v",
			stats.MakespanSeconds[100], longest)
	}
}

func TestDedupCandidates(t *testing.T) {
	a := Candidate{S: model.Strategy{Pos: geom.V(1, 2), Orient: 0.5, Type: 0}}
	b := Candidate{S: model.Strategy{Pos: geom.V(1, 2), Orient: 0.5, Type: 0}}
	c := Candidate{S: model.Strategy{Pos: geom.V(1, 2), Orient: 0.7, Type: 0}}
	out := dedupCandidates([]Candidate{a, b, c})
	if len(out) != 2 {
		t.Errorf("dedup kept %d, want 2", len(out))
	}
}

// TestExtractDistributedOrderIndependent is the regression test for the
// single-cost-model contract: the merged shard outputs and every scheduling
// statistic must be bit-identical regardless of how many workers the pool
// ran with (hand-out order changes, output must not), and the deterministic
// TaskCost estimates must drive both the LPT hand-out and the makespan
// simulation identically on every run.
func TestExtractDistributedOrderIndependent(t *testing.T) {
	sc := ringScenario()
	cfg := Config{Eps1: 0.4}
	ref, refStats := ExtractDistributed(sc, cfg, 1, []int{2, 4})
	for _, workers := range []int{3, 8} {
		got, stats := ExtractDistributed(sc, cfg, workers, []int{2, 4})
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: %d type buckets vs %d", workers, len(got), len(ref))
		}
		for q := range ref {
			if len(got[q]) != len(ref[q]) {
				t.Fatalf("workers=%d type %d: %d candidates vs %d", workers, q, len(got[q]), len(ref[q]))
			}
			for i := range ref[q] {
				a, b := ref[q][i], got[q][i]
				if math.Float64bits(a.S.Pos.X) != math.Float64bits(b.S.Pos.X) ||
					math.Float64bits(a.S.Pos.Y) != math.Float64bits(b.S.Pos.Y) ||
					math.Float64bits(a.S.Orient) != math.Float64bits(b.S.Orient) ||
					len(a.Covers) != len(b.Covers) {
					t.Fatalf("workers=%d type %d candidate %d differs from single-worker run", workers, q, i)
				}
				for m := range a.Covers {
					if a.Covers[m].Device != b.Covers[m].Device ||
						math.Float64bits(a.Covers[m].Power) != math.Float64bits(b.Covers[m].Power) {
						t.Fatalf("workers=%d type %d candidate %d coverage differs", workers, q, i)
					}
				}
			}
		}
		// With a nil Clock the stats are pure functions of the cost model;
		// any drift means a second estimate crept back in.
		for i := range refStats.TaskSeconds {
			if stats.TaskSeconds[i] != refStats.TaskSeconds[i] {
				t.Fatalf("workers=%d: task %d cost estimate %v vs %v", workers, i, stats.TaskSeconds[i], refStats.TaskSeconds[i])
			}
		}
		for _, m := range []int{2, 4} {
			if stats.MakespanSeconds[m] != refStats.MakespanSeconds[m] {
				t.Fatalf("workers=%d: makespan(%d) %v vs %v", workers, m, stats.MakespanSeconds[m], refStats.MakespanSeconds[m])
			}
		}
	}
}
