// Package pdcs implements Practical Dominating Coverage Set extraction
// (Section 4.2): Algorithm 1 (the rotating sweep at a fixed point),
// Algorithm 2 (area case, realized over the critical candidate positions
// from internal/discretize), and the dominance filtering that discards
// strategies whose coverage is subsumed by another strategy of the same
// charger type.
package pdcs

import (
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"time"

	"hipo/internal/discretize"
	"hipo/internal/geom"
	"hipo/internal/hipotrace"
	"hipo/internal/model"
	"hipo/internal/power"
	"hipo/internal/schedule"
	"hipo/internal/visindex"
)

// DevPower records the approximated charging power a candidate strategy
// delivers to one device.
type DevPower struct {
	Device int
	Power  float64
}

// Candidate is a candidate strategy together with the devices it covers and
// the piecewise-approximated power each receives.
type Candidate struct {
	S      model.Strategy
	Covers []DevPower // sorted by device index
}

// TotalPower returns the sum of approximated powers the candidate delivers.
func (c *Candidate) TotalPower() float64 {
	t := 0.0
	for _, dp := range c.Covers {
		t += dp.Power
	}
	return t
}

// eligible describes a device chargeable from a position, once the charger
// orientation allows it: its direction from the position and its
// approximated power.
type eligible struct {
	device int
	theta  float64 // direction from the charger position to the device
	pw     float64 // approximated charging power
}

// EligibleAt returns the devices that a charger of type q at position p
// could charge under some orientation: distance within [DMin, DMax], p
// inside the device's receiving sector, and clear line of sight. The
// returned powers use the piecewise approximation with parameter eps1.
func EligibleAt(sc *model.Scenario, q int, p geom.Vec, eps1 float64) []eligible {
	return newEligibleCache(sc, q, Config{Eps1: eps1, NoPairPruning: true, NoBatchedLOS: true}).atSeed(p)
}

// prunePad widens the device-grid query radius past every exact-predicate
// tolerance (the ±geom.Eps range gates), mirroring the padding contract of
// internal/visindex: the grid may only over-approximate.
const prunePad = 1e-6

// eligibleCache precomputes, per device type, the piecewise power levels
// for one charger type so that eligibility checks at thousands of candidate
// positions avoid re-deriving them; with the spatial accelerators enabled
// it also carries the device grid that prunes each position's device scan
// and the viewpoint tiling that batches its line-of-sight rays. Safe for
// concurrent use.
type eligibleCache struct {
	sc     *model.Scenario
	q      int
	ct     model.ChargerType
	levels []power.Levels // per device type
	// powerLevels is the total piecewise band count across device types (the
	// K of Lemma 4.1), reported to the tracer once per extraction.
	powerLevels int64
	tracer      *hipotrace.Tracer

	// dirs[j] = geom.FromAngle(Devices[j].Orient) and cosHalf[t] =
	// cos(DeviceTypes[t].Alpha/2), hoisted out of the sector gate that runs
	// millions of times per extraction; the values are the exact floats the
	// gate would recompute, so hoisting changes no bit.
	dirs    []geom.Vec
	cosHalf []float64

	// dgrid narrows each position's device scan to the cells overlapping
	// its d_max disk (nil under NoPairPruning).
	dgrid *visindex.DeviceGrid
	// vpg answers LOS rays through memoized per-tile viewpoint batches: one
	// obstacle collection per tile of positions instead of one DDA walk per
	// ray (nil under NoBatchedLOS, brute-force visibility, or no obstacles).
	vpg    *visindex.ViewpointGrid
	elPool sync.Pool // *[]eligible
	arPool sync.Pool // *covArena
}

func newEligibleCache(sc *model.Scenario, q int, cfg Config) *eligibleCache {
	ct := sc.ChargerTypes[q]
	c := &eligibleCache{sc: sc, q: q, ct: ct}
	levels := int64(0)
	for t := range sc.DeviceTypes {
		pp := sc.Power[q][t]
		c.levels = append(c.levels, power.NewLevels(pp.A, pp.B, ct.DMin, ct.DMax, cfg.Eps1))
		levels += int64(c.levels[t].NumBands())
	}
	c.powerLevels = levels
	pts := make([]geom.Vec, len(sc.Devices))
	c.dirs = make([]geom.Vec, len(sc.Devices))
	for j := range pts {
		pts[j] = sc.Devices[j].Pos
		c.dirs[j] = geom.FromAngle(sc.Devices[j].Orient)
	}
	c.cosHalf = make([]float64, len(sc.DeviceTypes))
	for t := range sc.DeviceTypes {
		c.cosHalf[t] = math.Cos(sc.DeviceTypes[t].Alpha / 2)
	}
	if !cfg.NoPairPruning && len(sc.Devices) > 0 {
		c.dgrid = visindex.NewDeviceGrid(pts, ct.DMax/2)
	}
	if !cfg.NoBatchedLOS && len(sc.Obstacles) > 0 {
		if ix, ok := sc.AttachedVisibilityIndex().(*visindex.Index); ok {
			c.vpg = ix.NewViewpointGrid(ct.DMax+prunePad, pts)
		}
	}
	return c
}

// getArena hands out a pooled Covers arena for one sweep chunk; reused is
// true when the arena (and its partially filled chunk) came back from an
// earlier chunk instead of being freshly allocated.
func (c *eligibleCache) getArena() (ar *covArena, reused bool) {
	if v := c.arPool.Get(); v != nil {
		return v.(*covArena), true
	}
	return &covArena{}, false
}

func (c *eligibleCache) putArena(ar *covArena) { c.arPool.Put(ar) }

// Tile-prefilter tolerances. The prefilter works on the tile envelope (all
// positions within slack of the tile center), so its gates must out-pad the
// exact per-position predicates in tryDevice:
//
//   - tileDistPad widens the [DMin, DMax] annulus beyond the exact ±geom.Eps
//     range gates, and is also the minimum center distance (beyond the
//     slack) at which the sector gate may engage — guaranteeing every
//     in-tile position is at least tileDistPad from the device, which
//     bounds the exact sector gate's angular tolerance below.
//   - tileAngPad bounds the widening of the exact sector acceptance cone:
//     tryDevice accepts cos ψ ≥ cos(α/2) − ε′ with ε′ = geom.Eps·max(1,d)/d
//     ≤ 1e-9/tileDistPad = 1e-6 for d ≥ tileDistPad, and
//     arccos(cos θ − ε′) ≤ θ + √(2ε′) ≤ θ + 1.5e-3 < θ + tileAngPad.
const (
	tileDistPad = 1e-3
	tileAngPad  = 2e-3
)

// tileDevices lists, in ascending index order, every device that could pass
// tryDevice's exact eligibility gates from some position within slack of
// center — the conservative per-tile device prefilter memoized by
// Viewpoint.AuxDevices. A device is skipped only when the whole tile
// envelope provably fails the charging-range annulus or lies outside the
// device's (padded) receiving sector.
func (c *eligibleCache) tileDevices(center geom.Vec, slack float64) []int32 {
	sc := c.sc
	ct := c.ct
	out := make([]int32, 0, len(sc.Devices))
	for j := range sc.Devices {
		dev := &sc.Devices[j]
		delta := dev.Pos.Sub(center)
		dc := delta.Len()
		if dc-slack > ct.DMax+geom.Eps+tileDistPad || dc+slack < ct.DMin-geom.Eps-tileDistPad {
			continue
		}
		dt := &sc.DeviceTypes[dev.Type]
		if dt.Alpha < 2*math.Pi-geom.Eps && dc > slack+tileDistPad {
			// Directions device→position across the tile deviate from the
			// device→center direction by at most asin(slack/dc).
			spread := math.Asin(math.Min(1, slack/dc))
			if geom.AbsAngleDiff(delta.Neg().Angle(), dev.Orient) > dt.Alpha/2+spread+tileAngPad {
				continue
			}
		}
		out = append(out, int32(j))
	}
	return out
}

// getEl / putEl pool the per-position eligibility slices. A slice is
// returned to the pool by sweepPointAppend once its contents have been
// copied into candidate Covers; EligibleAt's public result is simply never
// returned, which is safe (the pool just doesn't see it again).
func (c *eligibleCache) getEl() (out []eligible, reused bool) {
	if v := c.elPool.Get(); v != nil {
		return (*v.(*[]eligible))[:0], true
	}
	return nil, false
}

func (c *eligibleCache) putEl(el []eligible) {
	if cap(el) == 0 {
		return
	}
	c.elPool.Put(&el)
}

// rangeGates returns the squared charging-range gates with the ±geom.Eps
// tolerances baked in, shared by the seed and overhauled scans.
func (c *eligibleCache) rangeGates() (dmin2, dmax2 float64) {
	ct := c.ct
	dmin2 = (ct.DMin - geom.Eps) * (ct.DMin - geom.Eps)
	if ct.DMin < geom.Eps {
		dmin2 = 0
	}
	dmax2 = (ct.DMax + geom.Eps) * (ct.DMax + geom.Eps)
	return dmin2, dmax2
}

func (c *eligibleCache) at(p geom.Vec) []eligible {
	los, batched, reuse := 0, 0, 0
	sc := c.sc
	ct := c.ct
	dmin2, dmax2 := c.rangeGates()
	var vp *visindex.Viewpoint
	if c.vpg != nil {
		vp = c.vpg.At(p)
	}
	out, outReused := c.getEl()
	if outReused {
		reuse++
	}
	switch {
	case c.dgrid != nil && vp != nil:
		// Tile-pruned scan: the per-tile device prefilter is computed once
		// per viewpoint tile and shared by every position swept inside it,
		// in ascending index order like the full scan.
		aux, ok := vp.AuxDevices()
		if !ok {
			center, slack := vp.Envelope()
			aux = vp.SetAuxDevices(c.tileDevices(center, slack))
		}
		for _, j := range aux {
			out, los, batched = c.tryDevice(out, int(j), p, dmin2, dmax2, vp, los, batched)
		}
	case c.dgrid != nil:
		// Grid-pruned scan: only devices whose cell overlaps the d_max disk
		// around p, visited in ascending index order like the full scan.
		var maskBuf [4]uint64
		mask := maskBuf[:]
		if w := c.dgrid.Words(); w > len(maskBuf) {
			mask = make([]uint64, w)
		} else {
			mask = maskBuf[:w]
		}
		c.dgrid.CollectDisk(p, ct.DMax+prunePad, mask)
		for w, m := range mask {
			for ; m != 0; m &= m - 1 {
				j := w*64 + bits.TrailingZeros64(m)
				out, los, batched = c.tryDevice(out, j, p, dmin2, dmax2, vp, los, batched)
			}
		}
	default:
		for j := range sc.Devices {
			out, los, batched = c.tryDevice(out, j, p, dmin2, dmax2, vp, los, batched)
		}
	}
	c.tracer.Add(hipotrace.CtrLOSQueries, int64(los))
	c.tracer.Add(hipotrace.CtrLOSBatched, int64(batched))
	c.tracer.Add(hipotrace.CtrPoolReuse, int64(reuse))
	return out
}

// tryDevice applies the exact eligibility predicates to device j and
// appends it to out when chargeable from p. It is the single predicate
// body behind both the full and grid-pruned scans, so the two paths can
// only differ in which provably-out-of-range devices they skip.
func (c *eligibleCache) tryDevice(out []eligible, j int, p geom.Vec, dmin2, dmax2 float64, vp *visindex.Viewpoint, los, batched int) ([]eligible, int, int) {
	sc := c.sc
	dev := &sc.Devices[j]
	delta := dev.Pos.Sub(p)
	d2 := delta.Len2()
	if d2 < dmin2 || d2 > dmax2 {
		return out, los, batched
	}
	d := math.Sqrt(d2)
	// Charger within the device's receiving sector (dot-product form;
	// the radial gate is already checked above).
	dt := &sc.DeviceTypes[dev.Type]
	if dt.Alpha < 2*math.Pi-geom.Eps {
		if d <= geom.Eps {
			return out, los, batched
		}
		back := delta.Neg() // device → charger
		if back.Dot(c.dirs[j]) < d*c.cosHalf[dev.Type]-geom.Eps*math.Max(1, d) {
			return out, los, batched
		}
	}
	los++
	if vp != nil {
		batched++
		if !vp.LineOfSightTo(j, p) {
			return out, los, batched
		}
	} else if !sc.LineOfSight(p, dev.Pos) {
		return out, los, batched
	}
	pw := c.levels[dev.Type].Approx(d)
	if pw <= 0 {
		return out, los, batched
	}
	return append(out, eligible{device: j, theta: delta.Angle(), pw: pw}), los, batched
}

// atSeed is the pre-overhaul eligibility scan, preserved verbatim as the
// benchmark baseline arm and the reference side of the bit-identity test
// wall: a full device scan with a fresh result slice and one independent
// DDA grid walk per line-of-sight ray.
func (c *eligibleCache) atSeed(p geom.Vec) []eligible {
	los := 0
	defer func() { c.tracer.Add(hipotrace.CtrLOSQueries, int64(los)) }()
	sc := c.sc
	dmin2, dmax2 := c.rangeGates()
	var out []eligible
	for j := range sc.Devices {
		out, los, _ = c.tryDevice(out, j, p, dmin2, dmax2, nil, los, 0)
	}
	return out
}

// sweepPointSeed is the pre-overhaul Algorithm 1 sweep, preserved verbatim
// alongside atSeed for the baseline arm: per-position signature map,
// freshly allocated index sets, and a post-hoc sort of every candidate's
// Covers.
func sweepPointSeed(sc *model.Scenario, q int, p geom.Vec, cache *eligibleCache) []Candidate {
	el := cache.atSeed(p)
	if len(el) == 0 {
		return nil
	}
	ct := sc.ChargerTypes[q]
	if ct.Alpha >= 2*math.Pi-geom.Eps {
		// Omnidirectional charger: a single strategy covers everything.
		return []Candidate{makeCandidateSeed(p, 0, q, el, allIdx(len(el)))}
	}
	half := ct.Alpha / 2

	var cands []Candidate
	seen := make(map[string]bool)
	for _, e := range el {
		phi := geom.NormAngle(e.theta + half)
		var idx []int
		for i, f := range el {
			if geom.AbsAngleDiff(phi, f.theta) <= half+geom.Eps {
				idx = append(idx, i)
			}
		}
		sig := idxSignature(el, idx)
		if seen[sig] {
			continue
		}
		seen[sig] = true
		cands = append(cands, makeCandidateSeed(p, phi, q, el, idx))
	}
	return filterLocalDominated(cands)
}

func idxSignature(el []eligible, idx []int) string {
	buf := make([]byte, 0, len(idx)*4)
	for _, i := range idx {
		d := el[i].device
		buf = append(buf, byte(d), byte(d>>8), byte(d>>16), byte(d>>24))
	}
	return string(buf)
}

func makeCandidateSeed(p geom.Vec, phi float64, q int, el []eligible, idx []int) Candidate {
	c := Candidate{S: model.Strategy{Pos: p, Orient: phi, Type: q}}
	c.Covers = make([]DevPower, 0, len(idx))
	for _, i := range idx {
		c.Covers = append(c.Covers, DevPower{Device: el[i].device, Power: el[i].pw})
	}
	sort.Slice(c.Covers, func(a, b int) bool { return c.Covers[a].Device < c.Covers[b].Device })
	return c
}

// SweepPoint implements Algorithm 1: it rotates a charger of type q at
// point p through 360° and returns one candidate per practical dominating
// coverage set. Orientations are chosen at the critical positions where a
// device is about to fall out of the charging sector.
func SweepPoint(sc *model.Scenario, q int, p geom.Vec, eps1 float64) []Candidate {
	return sweepPointSeed(sc, q, p, newEligibleCache(sc, q, Config{Eps1: eps1, NoPairPruning: true, NoBatchedLOS: true}))
}

// sweepScratch carries the per-chunk reusable state of the overhauled
// sweep: the orientation index scratch and the Covers arena. One scratch
// serves every position of a sweep chunk, so per-position allocations
// vanish entirely.
type sweepScratch struct {
	idx []int
	ar  *covArena
}

// sweepPointAppend is the overhauled Algorithm 1 sweep: it appends point
// p's candidates to buf and returns the extended slice. Output (order
// included) is bit-for-bit identical to sweepPointSeed's; only the
// bookkeeping differs — pooled eligibility slices, a shared index scratch,
// direct cover comparisons instead of a per-position signature map, and
// arena-carved Covers built in device order with no post-hoc sort.
func sweepPointAppend(sc *model.Scenario, q int, p geom.Vec, cache *eligibleCache, scr *sweepScratch, buf []Candidate) []Candidate {
	el := cache.at(p)
	if len(el) == 0 {
		cache.putEl(el)
		return buf
	}
	ct := sc.ChargerTypes[q]
	if ct.Alpha >= 2*math.Pi-geom.Eps {
		// Omnidirectional charger: a single strategy covers everything.
		scr.idx = allIdxInto(scr.idx, len(el))
		buf = append(buf, makeCandidate(p, 0, q, el, scr.idx, scr.ar))
		cache.putEl(el)
		return buf
	}
	half := ct.Alpha / 2

	// Device k is covered at orientation φ iff φ ∈ [θ_k − half, θ_k + half].
	// Maximal coverage sets occur just before a device falls out, i.e. at
	// φ = θ_k + half for some k (Algorithm 1 line 4).
	start := len(buf)
	idx := scr.idx
	for _, e := range el {
		phi := geom.NormAngle(e.theta + half)
		idx = idx[:0]
		for i, f := range el {
			if geom.AbsAngleDiff(phi, f.theta) <= half+geom.Eps {
				idx = append(idx, i)
			}
		}
		// First-wins dedup on the covered-device sequence, comparing against
		// already-admitted candidates directly (the sets here are tiny, so
		// this beats the byte-signature map it replaced without changing
		// which candidate survives).
		if hasSameCover(buf[start:], el, idx) {
			continue
		}
		buf = append(buf, makeCandidate(p, phi, q, el, idx, scr.ar))
	}
	scr.idx = idx[:0]
	cache.putEl(el)
	kept := filterLocalDominated(buf[start:])
	return buf[:start+len(kept)]
}

// hasSameCover reports whether some candidate already covers exactly the
// devices el[idx] lists (both sides ascending by device index).
func hasSameCover(cands []Candidate, el []eligible, idx []int) bool {
	for k := range cands {
		cv := cands[k].Covers
		if len(cv) != len(idx) {
			continue
		}
		same := true
		for m, i := range idx {
			if cv[m].Device != el[i].device {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}

func allIdx(n int) []int {
	return allIdxInto(nil, n)
}

func allIdxInto(out []int, n int) []int {
	out = out[:0]
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

func makeCandidate(p geom.Vec, phi float64, q int, el []eligible, idx []int, ar *covArena) Candidate {
	c := Candidate{S: model.Strategy{Pos: p, Orient: phi, Type: q}}
	cv := ar.alloc(len(idx))
	// el is built in ascending device order and idx ascends into el, so
	// Covers comes out sorted by device with no explicit sort.
	for m, i := range idx {
		cv[m] = DevPower{Device: el[i].device, Power: el[i].pw}
	}
	c.Covers = cv
	return c
}

// filterLocalDominated removes candidates at a single position whose device
// sets are strict subsets of another candidate's (powers at one position are
// identical per device, so set inclusion is the whole story here).
func filterLocalDominated(cands []Candidate) []Candidate {
	out := cands[:0]
	for i := range cands {
		dominated := false
		for j := range cands {
			if i == j {
				continue
			}
			// Signature dedup upstream guarantees distinct sets, so a
			// subset with strictly smaller cardinality is a strict subset.
			if len(cands[i].Covers) < len(cands[j].Covers) &&
				coversSubset(cands[i].Covers, cands[j].Covers) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, cands[i])
		}
	}
	return out
}

// coversSubset reports whether a's device set is a subset of b's (both
// sorted by device).
func coversSubset(a, b []DevPower) bool {
	if len(a) > len(b) {
		return false
	}
	i := 0
	for _, x := range a {
		for i < len(b) && b[i].Device < x.Device {
			i++
		}
		if i >= len(b) || b[i].Device != x.Device {
			return false
		}
	}
	return true
}

// Extract runs the full PDCS extraction for charger type q: candidate
// positions from internal/discretize, Algorithm 1 at each (parallelized
// over positions with cfg.Workers goroutines), then global dominance
// filtering (Algorithm 2 step 9) unless cfg.SkipDominanceFilter. Results
// are deterministic regardless of worker count: per-position outputs are
// concatenated in position order.
//
//hipo:hotpath
func Extract(sc *model.Scenario, q int, cfg Config) []Candidate {
	sc = cfg.ensureVisibility(sc)
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	tr := cfg.Tracer
	label := typeLabel(q)
	endDisc := tr.StartStage(hipotrace.StageDiscretize, label)
	positions := discretize.CandidatePositions(sc, q, discretize.Config{
		Eps1:                  cfg.Eps1,
		Workers:               workers,
		SkipPairConstructions: cfg.SkipPairConstructions,
		NoPairPruning:         cfg.NoPairPruning,
		BruteForceVisibility:  cfg.BruteForceVisibility,
		Tracer:                tr,
	})
	endDisc()
	tr.Add(hipotrace.CtrCandidatePositions, int64(len(positions)))

	endSweep := tr.StartStage(hipotrace.StagePDCS, label)
	defer endSweep()
	cache := newEligibleCache(sc, q, cfg)
	cache.tracer = tr
	tr.Add(hipotrace.CtrPowerLevels, cache.powerLevels)
	// With every accelerator disabled, run the preserved pre-overhaul
	// pipeline: per-position sweeps, full concatenation, then the global
	// dominance filter. That combination is the benchmark baseline arm and
	// must reproduce the seed pipeline faithfully, costs included. Its
	// output is bit-for-bit identical to the overhauled path below (the
	// bit-identity wall checks this).
	if cfg.NoPairPruning && cfg.NoBatchedLOS {
		perPos := schedule.RunPool(len(positions), workers, func(i int) []Candidate {
			return sweepPointSeed(sc, q, positions[i], cache)
		})
		var cands []Candidate
		for _, cs := range perPos {
			cands = append(cands, cs...)
		}
		tr.Add(hipotrace.CtrCandidatesRaw, int64(len(cands)))
		if cfg.SkipDominanceFilter {
			tr.Add(hipotrace.CtrCandidatesKept, int64(len(cands)))
			return cands
		}
		kept := FilterDominated(cands, len(sc.Devices))
		tr.Add(hipotrace.CtrCandidatesKept, int64(len(kept)))
		return kept
	}

	// Overhauled arm: positions are swept in contiguous chunks (one output
	// buffer, index scratch, and Covers arena per chunk), and the chunk
	// outputs — concatenated in chunk order, which is position order — feed
	// the streaming reducer before the exact dominance filter.
	const sweepChunk = 256
	nChunks := (len(positions) + sweepChunk - 1) / sweepChunk
	perChunk := schedule.RunPool(nChunks, workers, func(ci int) []Candidate {
		lo := ci * sweepChunk
		hi := min(lo+sweepChunk, len(positions))
		ar, reused := cache.getArena()
		if reused {
			tr.Add(hipotrace.CtrPoolReuse, 1)
		}
		scr := sweepScratch{ar: ar}
		var buf []Candidate
		for i := lo; i < hi; i++ {
			buf = sweepPointAppend(sc, q, positions[i], cache, &scr, buf)
		}
		cache.putArena(ar)
		return buf
	})
	if cfg.SkipDominanceFilter {
		var cands []Candidate
		for _, cs := range perChunk {
			cands = append(cands, cs...)
		}
		tr.Add(hipotrace.CtrCandidatesRaw, int64(len(cands)))
		tr.Add(hipotrace.CtrCandidatesKept, int64(len(cands)))
		detachCovers(cands)
		return cands
	}
	red := newStreamReducer(len(sc.Devices))
	for _, cs := range perChunk {
		for i := range cs {
			red.add(cs[i])
		}
	}
	tr.Add(hipotrace.CtrCandidatesRaw, int64(red.raw))
	kept := FilterDominated(red.final(), len(sc.Devices))
	tr.Add(hipotrace.CtrCandidatesKept, int64(len(kept)))
	detachCovers(kept)
	return kept
}

// typeLabel renders the charger-type span label used in trace breakdowns
// and pprof hipo_detail labels.
func typeLabel(q int) string { return fmt.Sprintf("type-%d", q) }

// Config tunes PDCS extraction.
type Config struct {
	// Eps1 is the approximation parameter ε₁ (Lemma 4.1).
	Eps1 float64
	// Workers bounds the goroutines sweeping candidate positions
	// (0 = GOMAXPROCS).
	Workers int
	// SkipDominanceFilter keeps dominated candidates (ablation).
	SkipDominanceFilter bool
	// SkipPairConstructions is forwarded to internal/discretize (ablation).
	SkipPairConstructions bool
	// BruteForceVisibility answers occlusion queries by exhaustive obstacle
	// scan instead of the spatial index (differential reference arm).
	BruteForceVisibility bool
	// NoPairPruning disables the spatial prefilters — the device grid that
	// narrows neighbor sets, eligibility scans and usefulness tests, and
	// the obstacle-box pruning in discretization. Output is bit-for-bit
	// identical either way (the prefilters are conservative supersets
	// re-checked by the exact predicates); this is the benchmark baseline
	// arm and the reference side of the bit-identity test wall.
	NoPairPruning bool
	// NoBatchedLOS disables per-viewpoint line-of-sight batching and
	// answers every eligibility ray with an independent DDA grid walk.
	// Same bit-identity contract as NoPairPruning.
	NoBatchedLOS bool
	// Clock, when non-nil, supplies the timestamps behind the per-task
	// durations of DistStats (Algorithm 5's LPT simulation input). It is
	// injected by measurement harnesses (internal/expt) so the extraction
	// pipeline itself never reads the wall clock and stays deterministic;
	// with a nil Clock all reported durations are zero.
	Clock func() time.Time
	// Tracer, when non-nil, receives stage spans (discretize, pdcs) and the
	// pipeline counters of internal/hipotrace. Sweep hot paths count into
	// locals and flush per call; a nil Tracer costs nothing.
	Tracer *hipotrace.Tracer
}

// ensureVisibility attaches the spatial visibility index for this
// extraction unless brute force was requested or one is already present.
func (cfg Config) ensureVisibility(sc *model.Scenario) *model.Scenario {
	if cfg.BruteForceVisibility {
		return sc
	}
	return visindex.Ensure(sc)
}

// FilterDominated removes candidates that are dominated by another
// candidate of the same charger type: B dominates A when B covers every
// device A covers with at least A's power, and the two are not identical
// (ties keep the earlier candidate). Device bitsets accelerate the subset
// tests. no is the number of devices in the scenario.
func FilterDominated(cands []Candidate, no int) []Candidate {
	n := len(cands)
	if n <= 1 {
		return cands
	}
	words := (no + 63) / 64
	bits := make([][]uint64, n)
	total := make([]float64, n)
	for i := range cands {
		bits[i] = make([]uint64, words)
		for _, dp := range cands[i].Covers {
			bits[i][dp.Device/64] |= 1 << (uint(dp.Device) % 64)
		}
		total[i] = cands[i].TotalPower()
	}
	// Sort candidate order by decreasing total power so likely dominators
	// come first; dominance can only come from candidates with ≥ total
	// power (since powers are componentwise ≥). The sort is stable so that
	// equal-total ties resolve by input position — the invariant the
	// streaming reducer's drop rules are proved against, which also makes
	// the survivor choice within mutual-domination classes input-order
	// deterministic rather than an artifact of the sorting algorithm.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return total[order[a]] > total[order[b]] })

	keep := make([]bool, n)
	var kept []int
	for _, i := range order {
		dominated := false
		for _, k := range kept {
			if total[k] < total[i]-1e-15 {
				break // sorted: no later kept candidate can dominate
			}
			if i == k || !bitsSubset(bits[i], bits[k]) {
				continue
			}
			if powersDominated(cands[i].Covers, cands[k].Covers, cands[i].S.Type == cands[k].S.Type) {
				dominated = true
				break
			}
		}
		if !dominated {
			keep[i] = true
			kept = append(kept, i)
		}
	}
	out := cands[:0]
	for i := range cands {
		if keep[i] {
			out = append(out, cands[i])
		}
	}
	return out
}

func bitsSubset(a, b []uint64) bool {
	for w := range a {
		if a[w]&^b[w] != 0 {
			return false
		}
	}
	return true
}

// powersDominated reports whether every covered power in a is ≤ the
// corresponding power in b. sameType guards against comparing strategies of
// different charger types, which occupy different matroid partitions and
// must never dominate one another.
func powersDominated(a, b []DevPower, sameType bool) bool {
	if !sameType {
		return false
	}
	i := 0
	for _, x := range a {
		for i < len(b) && b[i].Device < x.Device {
			i++
		}
		if i >= len(b) || b[i].Device != x.Device || b[i].Power < x.Power-1e-15 {
			return false
		}
	}
	return true
}

// ExtractAll runs Extract for every charger type and returns the per-type
// candidate sets, the ground set of the partition matroid of Section 4.3.
//
//hipo:hotpath
func ExtractAll(sc *model.Scenario, cfg Config) [][]Candidate {
	out := make([][]Candidate, len(sc.ChargerTypes))
	for q := range sc.ChargerTypes {
		out[q] = Extract(sc, q, cfg)
	}
	return out
}
