// Package pdcs implements Practical Dominating Coverage Set extraction
// (Section 4.2): Algorithm 1 (the rotating sweep at a fixed point),
// Algorithm 2 (area case, realized over the critical candidate positions
// from internal/discretize), and the dominance filtering that discards
// strategies whose coverage is subsumed by another strategy of the same
// charger type.
package pdcs

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"time"

	"hipo/internal/discretize"
	"hipo/internal/geom"
	"hipo/internal/hipotrace"
	"hipo/internal/model"
	"hipo/internal/power"
	"hipo/internal/schedule"
	"hipo/internal/visindex"
)

// DevPower records the approximated charging power a candidate strategy
// delivers to one device.
type DevPower struct {
	Device int
	Power  float64
}

// Candidate is a candidate strategy together with the devices it covers and
// the piecewise-approximated power each receives.
type Candidate struct {
	S      model.Strategy
	Covers []DevPower // sorted by device index
}

// TotalPower returns the sum of approximated powers the candidate delivers.
func (c *Candidate) TotalPower() float64 {
	t := 0.0
	for _, dp := range c.Covers {
		t += dp.Power
	}
	return t
}

// eligible describes a device chargeable from a position, once the charger
// orientation allows it: its direction from the position and its
// approximated power.
type eligible struct {
	device int
	theta  float64 // direction from the charger position to the device
	pw     float64 // approximated charging power
}

// EligibleAt returns the devices that a charger of type q at position p
// could charge under some orientation: distance within [DMin, DMax], p
// inside the device's receiving sector, and clear line of sight. The
// returned powers use the piecewise approximation with parameter eps1.
func EligibleAt(sc *model.Scenario, q int, p geom.Vec, eps1 float64) []eligible {
	return newEligibleCache(sc, q, eps1).at(p)
}

// eligibleCache precomputes, per device type, the piecewise power levels
// for one charger type so that eligibility checks at thousands of candidate
// positions avoid re-deriving them. Safe for concurrent reads.
type eligibleCache struct {
	sc     *model.Scenario
	q      int
	ct     model.ChargerType
	levels []power.Levels // per device type
	// powerLevels is the total piecewise band count across device types (the
	// K of Lemma 4.1), reported to the tracer once per extraction.
	powerLevels int64
	tracer      *hipotrace.Tracer
}

func newEligibleCache(sc *model.Scenario, q int, eps1 float64) *eligibleCache {
	ct := sc.ChargerTypes[q]
	c := &eligibleCache{sc: sc, q: q, ct: ct}
	levels := int64(0)
	for t := range sc.DeviceTypes {
		pp := sc.Power[q][t]
		c.levels = append(c.levels, power.NewLevels(pp.A, pp.B, ct.DMin, ct.DMax, eps1))
		levels += int64(c.levels[t].NumBands())
	}
	c.powerLevels = levels
	return c
}

func (c *eligibleCache) at(p geom.Vec) []eligible {
	los := 0
	defer func() { c.tracer.Add(hipotrace.CtrLOSQueries, int64(los)) }()
	sc, ct := c.sc, c.ct
	dmin2 := (ct.DMin - geom.Eps) * (ct.DMin - geom.Eps)
	if ct.DMin < geom.Eps {
		dmin2 = 0
	}
	dmax2 := (ct.DMax + geom.Eps) * (ct.DMax + geom.Eps)
	var out []eligible
	for j := range sc.Devices {
		dev := &sc.Devices[j]
		delta := dev.Pos.Sub(p)
		d2 := delta.Len2()
		if d2 < dmin2 || d2 > dmax2 {
			continue
		}
		d := math.Sqrt(d2)
		// Charger within the device's receiving sector (dot-product form;
		// the radial gate is already checked above).
		dt := &sc.DeviceTypes[dev.Type]
		if dt.Alpha < 2*math.Pi-geom.Eps {
			if d <= geom.Eps {
				continue
			}
			back := delta.Neg() // device → charger
			if back.Dot(geom.FromAngle(dev.Orient)) < d*math.Cos(dt.Alpha/2)-geom.Eps*math.Max(1, d) {
				continue
			}
		}
		los++
		if !sc.LineOfSight(p, dev.Pos) {
			continue
		}
		pw := c.levels[dev.Type].Approx(d)
		if pw <= 0 {
			continue
		}
		out = append(out, eligible{device: j, theta: delta.Angle(), pw: pw})
	}
	return out
}

// SweepPoint implements Algorithm 1: it rotates a charger of type q at
// point p through 360° and returns one candidate per practical dominating
// coverage set. Orientations are chosen at the critical positions where a
// device is about to fall out of the charging sector.
func SweepPoint(sc *model.Scenario, q int, p geom.Vec, eps1 float64) []Candidate {
	return sweepPointCached(sc, q, p, newEligibleCache(sc, q, eps1))
}

func sweepPointCached(sc *model.Scenario, q int, p geom.Vec, cache *eligibleCache) []Candidate {
	el := cache.at(p)
	if len(el) == 0 {
		return nil
	}
	ct := sc.ChargerTypes[q]
	if ct.Alpha >= 2*math.Pi-geom.Eps {
		// Omnidirectional charger: a single strategy covers everything.
		return []Candidate{makeCandidate(p, 0, q, el, allIdx(len(el)))}
	}
	half := ct.Alpha / 2

	// Device k is covered at orientation φ iff φ ∈ [θ_k − half, θ_k + half].
	// Maximal coverage sets occur just before a device falls out, i.e. at
	// φ = θ_k + half for some k (Algorithm 1 line 4).
	var cands []Candidate
	seen := make(map[string]bool)
	for _, e := range el {
		phi := geom.NormAngle(e.theta + half)
		var idx []int
		for i, f := range el {
			if geom.AbsAngleDiff(phi, f.theta) <= half+geom.Eps {
				idx = append(idx, i)
			}
		}
		sig := idxSignature(el, idx)
		if seen[sig] {
			continue
		}
		seen[sig] = true
		cands = append(cands, makeCandidate(p, phi, q, el, idx))
	}
	return filterLocalDominated(cands)
}

func allIdx(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func idxSignature(el []eligible, idx []int) string {
	buf := make([]byte, 0, len(idx)*4)
	for _, i := range idx {
		d := el[i].device
		buf = append(buf, byte(d), byte(d>>8), byte(d>>16), byte(d>>24))
	}
	return string(buf)
}

func makeCandidate(p geom.Vec, phi float64, q int, el []eligible, idx []int) Candidate {
	c := Candidate{S: model.Strategy{Pos: p, Orient: phi, Type: q}}
	c.Covers = make([]DevPower, 0, len(idx))
	for _, i := range idx {
		c.Covers = append(c.Covers, DevPower{Device: el[i].device, Power: el[i].pw})
	}
	sort.Slice(c.Covers, func(a, b int) bool { return c.Covers[a].Device < c.Covers[b].Device })
	return c
}

// filterLocalDominated removes candidates at a single position whose device
// sets are strict subsets of another candidate's (powers at one position are
// identical per device, so set inclusion is the whole story here).
func filterLocalDominated(cands []Candidate) []Candidate {
	out := cands[:0]
	for i := range cands {
		dominated := false
		for j := range cands {
			if i == j {
				continue
			}
			// Signature dedup upstream guarantees distinct sets, so a
			// subset with strictly smaller cardinality is a strict subset.
			if len(cands[i].Covers) < len(cands[j].Covers) &&
				coversSubset(cands[i].Covers, cands[j].Covers) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, cands[i])
		}
	}
	return out
}

// coversSubset reports whether a's device set is a subset of b's (both
// sorted by device).
func coversSubset(a, b []DevPower) bool {
	if len(a) > len(b) {
		return false
	}
	i := 0
	for _, x := range a {
		for i < len(b) && b[i].Device < x.Device {
			i++
		}
		if i >= len(b) || b[i].Device != x.Device {
			return false
		}
	}
	return true
}

// Extract runs the full PDCS extraction for charger type q: candidate
// positions from internal/discretize, Algorithm 1 at each (parallelized
// over positions with cfg.Workers goroutines), then global dominance
// filtering (Algorithm 2 step 9) unless cfg.SkipDominanceFilter. Results
// are deterministic regardless of worker count: per-position outputs are
// concatenated in position order.
//
//hipo:hotpath
func Extract(sc *model.Scenario, q int, cfg Config) []Candidate {
	sc = cfg.ensureVisibility(sc)
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	tr := cfg.Tracer
	label := typeLabel(q)
	endDisc := tr.StartStage(hipotrace.StageDiscretize, label)
	positions := discretize.CandidatePositions(sc, q, discretize.Config{
		Eps1:                  cfg.Eps1,
		Workers:               workers,
		SkipPairConstructions: cfg.SkipPairConstructions,
		BruteForceVisibility:  cfg.BruteForceVisibility,
		Tracer:                tr,
	})
	endDisc()
	tr.Add(hipotrace.CtrCandidatePositions, int64(len(positions)))

	endSweep := tr.StartStage(hipotrace.StagePDCS, label)
	defer endSweep()
	cache := newEligibleCache(sc, q, cfg.Eps1)
	cache.tracer = tr
	tr.Add(hipotrace.CtrPowerLevels, cache.powerLevels)
	perPos := schedule.RunPool(len(positions), workers, func(i int) []Candidate {
		return sweepPointCached(sc, q, positions[i], cache)
	})
	var cands []Candidate
	for _, cs := range perPos {
		cands = append(cands, cs...)
	}
	tr.Add(hipotrace.CtrCandidatesRaw, int64(len(cands)))
	if cfg.SkipDominanceFilter {
		tr.Add(hipotrace.CtrCandidatesKept, int64(len(cands)))
		return cands
	}
	kept := FilterDominated(cands, len(sc.Devices))
	tr.Add(hipotrace.CtrCandidatesKept, int64(len(kept)))
	return kept
}

// typeLabel renders the charger-type span label used in trace breakdowns
// and pprof hipo_detail labels.
func typeLabel(q int) string { return fmt.Sprintf("type-%d", q) }

// Config tunes PDCS extraction.
type Config struct {
	// Eps1 is the approximation parameter ε₁ (Lemma 4.1).
	Eps1 float64
	// Workers bounds the goroutines sweeping candidate positions
	// (0 = GOMAXPROCS).
	Workers int
	// SkipDominanceFilter keeps dominated candidates (ablation).
	SkipDominanceFilter bool
	// SkipPairConstructions is forwarded to internal/discretize (ablation).
	SkipPairConstructions bool
	// BruteForceVisibility answers occlusion queries by exhaustive obstacle
	// scan instead of the spatial index (differential reference arm).
	BruteForceVisibility bool
	// Clock, when non-nil, supplies the timestamps behind the per-task
	// durations of DistStats (Algorithm 5's LPT simulation input). It is
	// injected by measurement harnesses (internal/expt) so the extraction
	// pipeline itself never reads the wall clock and stays deterministic;
	// with a nil Clock all reported durations are zero.
	Clock func() time.Time
	// Tracer, when non-nil, receives stage spans (discretize, pdcs) and the
	// pipeline counters of internal/hipotrace. Sweep hot paths count into
	// locals and flush per call; a nil Tracer costs nothing.
	Tracer *hipotrace.Tracer
}

// ensureVisibility attaches the spatial visibility index for this
// extraction unless brute force was requested or one is already present.
func (cfg Config) ensureVisibility(sc *model.Scenario) *model.Scenario {
	if cfg.BruteForceVisibility {
		return sc
	}
	return visindex.Ensure(sc)
}

// FilterDominated removes candidates that are dominated by another
// candidate of the same charger type: B dominates A when B covers every
// device A covers with at least A's power, and the two are not identical
// (ties keep the earlier candidate). Device bitsets accelerate the subset
// tests. no is the number of devices in the scenario.
func FilterDominated(cands []Candidate, no int) []Candidate {
	n := len(cands)
	if n <= 1 {
		return cands
	}
	words := (no + 63) / 64
	bits := make([][]uint64, n)
	total := make([]float64, n)
	for i := range cands {
		bits[i] = make([]uint64, words)
		for _, dp := range cands[i].Covers {
			bits[i][dp.Device/64] |= 1 << (uint(dp.Device) % 64)
		}
		total[i] = cands[i].TotalPower()
	}
	// Sort candidate order by decreasing total power so likely dominators
	// come first; dominance can only come from candidates with ≥ total
	// power (since powers are componentwise ≥).
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return total[order[a]] > total[order[b]] })

	keep := make([]bool, n)
	var kept []int
	for _, i := range order {
		dominated := false
		for _, k := range kept {
			if total[k] < total[i]-1e-15 {
				break // sorted: no later kept candidate can dominate
			}
			if i == k || !bitsSubset(bits[i], bits[k]) {
				continue
			}
			if powersDominated(cands[i].Covers, cands[k].Covers, cands[i].S.Type == cands[k].S.Type) {
				dominated = true
				break
			}
		}
		if !dominated {
			keep[i] = true
			kept = append(kept, i)
		}
	}
	out := cands[:0]
	for i := range cands {
		if keep[i] {
			out = append(out, cands[i])
		}
	}
	return out
}

func bitsSubset(a, b []uint64) bool {
	for w := range a {
		if a[w]&^b[w] != 0 {
			return false
		}
	}
	return true
}

// powersDominated reports whether every covered power in a is ≤ the
// corresponding power in b. sameType guards against comparing strategies of
// different charger types, which occupy different matroid partitions and
// must never dominate one another.
func powersDominated(a, b []DevPower, sameType bool) bool {
	if !sameType {
		return false
	}
	i := 0
	for _, x := range a {
		for i < len(b) && b[i].Device < x.Device {
			i++
		}
		if i >= len(b) || b[i].Device != x.Device || b[i].Power < x.Power-1e-15 {
			return false
		}
	}
	return true
}

// ExtractAll runs Extract for every charger type and returns the per-type
// candidate sets, the ground set of the partition matroid of Section 4.3.
//
//hipo:hotpath
func ExtractAll(sc *model.Scenario, cfg Config) [][]Candidate {
	out := make([][]Candidate, len(sc.ChargerTypes))
	for q := range sc.ChargerTypes {
		out[q] = Extract(sc, q, cfg)
	}
	return out
}
