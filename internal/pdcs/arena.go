package pdcs

// covArena bump-allocates Candidate.Covers storage in large chunks so the
// overhauled sweep performs one heap allocation per ~8k covered devices
// instead of one per candidate. Carved slices are full-capacity
// (three-index) sub-slices and the write position only ever advances, so a
// slice handed out earlier can never be re-carved or overwritten — even
// after the arena returns to a pool and serves a later sweep. Candidates
// that escape extraction are detached from arena storage (detachCovers) so
// survivors never pin a mostly-dead chunk.
type covArena struct {
	buf []DevPower
}

// covArenaChunk is the chunk size in DevPower entries (~128 KiB).
const covArenaChunk = 1 << 13

func (a *covArena) alloc(n int) []DevPower {
	if n > cap(a.buf)-len(a.buf) {
		sz := covArenaChunk
		if n > sz {
			sz = n
		}
		a.buf = make([]DevPower, 0, sz)
	}
	start := len(a.buf)
	a.buf = a.buf[:start+n]
	return a.buf[start : start+n : start+n]
}

// detachCovers replaces every candidate's Covers with a private copy,
// releasing the extraction arenas the slices were carved from.
func detachCovers(cands []Candidate) {
	for i := range cands {
		if len(cands[i].Covers) > 0 {
			cands[i].Covers = append([]DevPower(nil), cands[i].Covers...)
		}
	}
}
