package pdcs

import (
	"math"
	"math/rand"
	"testing"

	"hipo/internal/geom"
	"hipo/internal/model"
	"hipo/internal/power"
)

func ringScenario() *model.Scenario {
	// Six devices on a circle of radius 5 around the origin-offset point
	// (20,20), all facing the center, mirroring the toy example of Figure 5.
	sc := &model.Scenario{
		Region: model.Region{Min: geom.V(0, 0), Max: geom.V(40, 40)},
		ChargerTypes: []model.ChargerType{
			{Name: "c1", Alpha: math.Pi / 2, DMin: 1, DMax: 8, Count: 2},
		},
		DeviceTypes: []model.DeviceType{
			{Name: "d1", Alpha: 2 * math.Pi, PTh: 0.05},
		},
		Power: [][]model.PowerParams{{{A: 100, B: 40}}},
	}
	center := geom.V(20, 20)
	for i := 0; i < 6; i++ {
		theta := 2 * math.Pi * float64(i) / 6
		pos := center.Add(geom.FromAngle(theta).Scale(5))
		sc.Devices = append(sc.Devices, model.Device{
			Pos: pos, Orient: geom.NormAngle(theta + math.Pi), Type: 0,
		})
	}
	return sc
}

func TestEligibleAt(t *testing.T) {
	sc := ringScenario()
	el := EligibleAt(sc, 0, geom.V(20, 20), 0.4)
	if len(el) != 6 {
		t.Fatalf("eligible = %d, want 6", len(el))
	}
	for _, e := range el {
		if e.pw <= 0 {
			t.Errorf("device %d power %v", e.device, e.pw)
		}
	}
	// Out of range position.
	if el := EligibleAt(sc, 0, geom.V(0, 0), 0.4); len(el) != 0 {
		t.Errorf("far position eligible = %d", len(el))
	}
}

func TestEligibleRespectsReceivingSector(t *testing.T) {
	sc := ringScenario()
	sc.DeviceTypes[0].Alpha = math.Pi / 2 // narrow receiving
	// Devices face the center, so the center is eligible for all.
	el := EligibleAt(sc, 0, geom.V(20, 20), 0.4)
	if len(el) != 6 {
		t.Fatalf("center eligible = %d, want 6", len(el))
	}
	// A point behind device 0 (outside its receiving sector) must exclude
	// device 0. Device 0 sits at (25,20) facing π (towards −x); a charger at
	// (29,20) is behind it.
	el = EligibleAt(sc, 0, geom.V(29, 20), 0.4)
	for _, e := range el {
		if e.device == 0 {
			t.Error("device 0 should not be eligible from behind")
		}
	}
}

func TestEligibleObstacle(t *testing.T) {
	sc := ringScenario()
	// Wall between center and device 0 at (25,20).
	sc.Obstacles = []model.Obstacle{{Shape: geom.Rect(22, 18, 23, 22)}}
	el := EligibleAt(sc, 0, geom.V(20, 20), 0.4)
	for _, e := range el {
		if e.device == 0 {
			t.Error("blocked device 0 should not be eligible")
		}
	}
	if len(el) != 5 {
		t.Errorf("eligible = %d, want 5", len(el))
	}
}

func TestSweepPointMaximality(t *testing.T) {
	sc := ringScenario()
	cands := SweepPoint(sc, 0, geom.V(20, 20), 0.4)
	if len(cands) == 0 {
		t.Fatal("no candidates from sweep")
	}
	// α = π/2 covers exactly a quarter of the circle: from the center, the
	// six devices are 60° apart, so a quarter sector covers at most 2.
	for _, c := range cands {
		if len(c.Covers) == 0 || len(c.Covers) > 2 {
			t.Errorf("cover size = %d, want 1..2", len(c.Covers))
		}
		// Verify each claimed covered device is actually charged under the
		// exact model gates (power > 0 given the chosen orientation).
		for _, dp := range c.Covers {
			if got := power.Exact(sc, c.S, dp.Device); got <= 0 {
				t.Errorf("claimed covered device %d receives no exact power", dp.Device)
			}
		}
	}
	// No candidate's set is a strict subset of another's.
	for i := range cands {
		for j := range cands {
			if i != j && len(cands[i].Covers) < len(cands[j].Covers) &&
				coversSubset(cands[i].Covers, cands[j].Covers) {
				t.Errorf("candidate %d dominated by %d at same point", i, j)
			}
		}
	}
}

func TestSweepPointOmnidirectional(t *testing.T) {
	sc := ringScenario()
	sc.ChargerTypes[0].Alpha = 2 * math.Pi
	cands := SweepPoint(sc, 0, geom.V(20, 20), 0.4)
	if len(cands) != 1 {
		t.Fatalf("omnidirectional candidates = %d, want 1", len(cands))
	}
	if len(cands[0].Covers) != 6 {
		t.Errorf("omnidirectional covers = %d, want 6", len(cands[0].Covers))
	}
}

func TestSweepPointWideAngleCoversAll(t *testing.T) {
	sc := ringScenario()
	sc.ChargerTypes[0].Alpha = 2*math.Pi - 0.05
	cands := SweepPoint(sc, 0, geom.V(20, 20), 0.4)
	best := 0
	for _, c := range cands {
		if len(c.Covers) > best {
			best = len(c.Covers)
		}
	}
	// A near-full sector from the center covers at least 5 of 6 devices.
	if best < 5 {
		t.Errorf("wide-angle best cover = %d", best)
	}
}

func TestFilterDominated(t *testing.T) {
	mk := func(q int, devPowers ...DevPower) Candidate {
		return Candidate{S: model.Strategy{Type: q}, Covers: devPowers}
	}
	cands := []Candidate{
		mk(0, DevPower{0, 1.0}, DevPower{1, 2.0}),
		mk(0, DevPower{0, 1.0}),                   // dominated by #0
		mk(0, DevPower{0, 2.0}),                   // NOT dominated (more power on dev 0)
		mk(0, DevPower{2, 1.0}),                   // disjoint: kept
		mk(1, DevPower{0, 0.5}),                   // different type: kept
		mk(0, DevPower{0, 1.0}, DevPower{1, 2.0}), // duplicate of #0: dropped
	}
	out := FilterDominated(cands, 3)
	if len(out) != 4 {
		t.Fatalf("filtered to %d candidates, want 4", len(out))
	}
	// The dominated singleton and the duplicate must be gone.
	for _, c := range out {
		if c.S.Type == 0 && len(c.Covers) == 1 && c.Covers[0].Device == 0 && c.Covers[0].Power == 1.0 {
			t.Error("dominated candidate survived")
		}
	}
}

func TestExtractEndToEnd(t *testing.T) {
	sc := ringScenario()
	cands := Extract(sc, 0, Config{Eps1: 0.4})
	if len(cands) == 0 {
		t.Fatal("extraction produced no candidates")
	}
	// Every candidate must be placeable and genuinely charge its devices.
	for _, c := range cands {
		if !sc.FeasiblePosition(c.S.Pos) {
			t.Fatalf("infeasible candidate position %v", c.S.Pos)
		}
		for _, dp := range c.Covers {
			if power.Exact(sc, c.S, dp.Device) <= 0 {
				t.Fatalf("candidate at %v claims device %d but delivers nothing",
					c.S.Pos, dp.Device)
			}
		}
	}
	// Dominance filter leaves no strictly dominated same-type pair.
	for i := range cands {
		for j := range cands {
			if i == j {
				continue
			}
			if coversSubset(cands[i].Covers, cands[j].Covers) &&
				powersDominated(cands[i].Covers, cands[j].Covers, true) &&
				!sameCandidate(cands[i], cands[j]) {
				t.Fatalf("candidate %d dominated by %d survived the filter", i, j)
			}
		}
	}
}

func sameCandidate(a, b Candidate) bool {
	if len(a.Covers) != len(b.Covers) {
		return false
	}
	for i := range a.Covers {
		if a.Covers[i] != b.Covers[i] {
			return false
		}
	}
	return true
}

func TestExtractAllTypes(t *testing.T) {
	sc := ringScenario()
	sc.ChargerTypes = append(sc.ChargerTypes, model.ChargerType{
		Name: "c2", Alpha: math.Pi, DMin: 0.5, DMax: 6, Count: 1,
	})
	sc.Power = append(sc.Power, []model.PowerParams{{A: 120, B: 48}})
	all := ExtractAll(sc, Config{Eps1: 0.4})
	if len(all) != 2 {
		t.Fatalf("per-type sets = %d", len(all))
	}
	for q, cands := range all {
		if len(cands) == 0 {
			t.Errorf("type %d has no candidates", q)
		}
		for _, c := range cands {
			if c.S.Type != q {
				t.Errorf("type mismatch: candidate %v in bucket %d", c.S, q)
			}
		}
	}
}

// Property: the best candidate strategy from PDCS extraction is at least as
// good (in covered-device count for a single charger) as any of a large set
// of random strategies. This is the dominance guarantee of Theorem 4.1 in
// observable form.
func TestExtractDominatesRandomStrategies(t *testing.T) {
	sc := ringScenario()
	cands := Extract(sc, 0, Config{Eps1: 0.4})
	bestCand := 0
	for _, c := range cands {
		if len(c.Covers) > bestCand {
			bestCand = len(c.Covers)
		}
	}
	rng := rand.New(rand.NewSource(99))
	bestRandom := 0
	for trial := 0; trial < 5000; trial++ {
		s := model.Strategy{
			Pos:    geom.V(rng.Float64()*40, rng.Float64()*40),
			Orient: rng.Float64() * 2 * math.Pi,
			Type:   0,
		}
		n := 0
		for j := range sc.Devices {
			if power.Exact(sc, s, j) > 0 {
				n++
			}
		}
		if n > bestRandom {
			bestRandom = n
		}
	}
	if bestCand < bestRandom {
		t.Errorf("PDCS best covers %d devices but random found %d", bestCand, bestRandom)
	}
}
