package pdcs

import (
	"runtime"

	"hipo/internal/geom"
	"hipo/internal/model"
	"hipo/internal/schedule"
)

// Sweeper exposes the overhauled per-position Algorithm 1 sweep for
// incremental re-extraction (internal/incremental): one eligibility cache —
// device grid, viewpoint tiling, pooled arenas — shared across calls, with
// per-position outputs that are safe to cache across solves.
//
// Contract: a position's sweep output is a pure function of (scenario
// geometry within DMax of the position, charger type, eps1). SweepPositions
// therefore returns, for any subset of positions, exactly the candidates
// Extract would produce for those positions, bit for bit — the accelerators
// only prune provably ineligible devices and are re-checked by the exact
// predicates. The bit-identity wall in extract_test.go pins this.
type Sweeper struct {
	sc    *model.Scenario
	q     int
	cfg   Config
	cache *eligibleCache
}

// NewSweeper builds a sweeper for charger type q. The scenario should
// already carry a visibility index (visindex.Ensure); one is attached on a
// clone otherwise.
func NewSweeper(sc *model.Scenario, q int, cfg Config) *Sweeper {
	sc = cfg.ensureVisibility(sc)
	cache := newEligibleCache(sc, q, cfg)
	cache.tracer = cfg.Tracer
	return &Sweeper{sc: sc, q: q, cfg: cfg, cache: cache}
}

// SweepPositions sweeps the given positions with the configured worker count
// and returns one candidate list per position, in position order. Every
// returned candidate owns its Covers privately (detached from the sweep
// arenas), so results may be cached and later re-fed to ReduceCandidates.
func (s *Sweeper) SweepPositions(positions []geom.Vec) [][]Candidate {
	workers := s.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	const chunk = 256
	nChunks := (len(positions) + chunk - 1) / chunk
	perChunk := schedule.RunPool(nChunks, workers, func(ci int) [][]Candidate {
		lo := ci * chunk
		hi := min(lo+chunk, len(positions))
		ar, _ := s.cache.getArena()
		scr := sweepScratch{ar: ar}
		out := make([][]Candidate, 0, hi-lo)
		var buf []Candidate
		for i := lo; i < hi; i++ {
			start := len(buf)
			buf = sweepPointAppend(s.sc, s.q, positions[i], s.cache, &scr, buf)
			cs := append([]Candidate(nil), buf[start:]...)
			detachCovers(cs)
			out = append(out, cs)
		}
		s.cache.putArena(ar)
		return out
	})
	out := make([][]Candidate, 0, len(positions))
	for _, cs := range perChunk {
		out = append(out, cs...)
	}
	return out
}

// ReduceCandidates runs the identical reduction tail of Extract — the
// streaming reducer in position order, then the exact global dominance
// filter — over per-position candidate lists. Feeding the per-position
// outputs of SweepPositions (cached or fresh) in Extract's position order
// reproduces Extract's survivors bit for bit. The returned candidates own
// their Covers privately, so callers may mutate cached inputs afterwards
// (e.g. remapping device indices) without aliasing the result.
func ReduceCandidates(perPos [][]Candidate, no int) []Candidate {
	red := newStreamReducer(no)
	for _, cs := range perPos {
		for i := range cs {
			red.add(cs[i])
		}
	}
	kept := FilterDominated(red.final(), no)
	detachCovers(kept)
	return kept
}
