package jobs

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSubmitStormAtCapacity hammers a saturated manager from many
// goroutines and checks the overload contract end to end: every Submit
// either succeeds or fails cleanly with ErrQueueFull, every accepted job
// reaches a terminal state once the workers are released, the census
// gauges read fully drained, and no goroutine outlives the manager (the
// cancel_test.go leak-check pattern). Run under -race in CI.
func TestSubmitStormAtCapacity(t *testing.T) {
	baseline := runtime.NumGoroutine()

	const (
		workers  = 2
		depth    = 4
		stormers = 16
		perStorm = 50
	)
	m := NewManager(context.Background(), Config{Workers: workers, Depth: depth})

	// Park every worker so the queue is the only capacity.
	release := make(chan struct{})
	var parked sync.WaitGroup
	parked.Add(workers)
	blockers := make([]string, 0, workers)
	for i := 0; i < workers; i++ {
		id, err := m.Submit(func(ctx context.Context) (any, error) {
			parked.Done()
			<-release
			return nil, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		blockers = append(blockers, id)
	}
	parked.Wait()

	var accepted sync.Map // id -> struct{}
	var rejected, acceptedN atomic.Int64
	var storm sync.WaitGroup
	for g := 0; g < stormers; g++ {
		storm.Add(1)
		go func() {
			defer storm.Done()
			for i := 0; i < perStorm; i++ {
				id, err := m.Submit(func(ctx context.Context) (any, error) { return i, nil })
				switch {
				case err == nil:
					accepted.Store(id, struct{}{})
					acceptedN.Add(1)
				case errors.Is(err, ErrQueueFull):
					rejected.Add(1)
				default:
					t.Errorf("Submit: unexpected error %v", err)
				}
			}
		}()
	}
	storm.Wait()

	// With the workers parked, at most `depth` storm submits can fit.
	if got := acceptedN.Load(); got > depth {
		t.Errorf("accepted %d storm jobs with all workers parked, queue depth %d", got, depth)
	}
	if rejected.Load() == 0 {
		t.Error("saturated queue never returned ErrQueueFull")
	}

	close(release)
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Every accepted job (and the blockers) must be terminal and pollable.
	check := func(id string) {
		snap, err := m.Get(id)
		if err != nil {
			t.Errorf("job %s: %v", id, err)
			return
		}
		if !snap.State.Terminal() {
			t.Errorf("job %s left in state %s after drain", id, snap.State)
		}
		if snap.Finished == nil {
			t.Errorf("job %s terminal without a finish time", id)
		}
	}
	for _, id := range blockers {
		check(id)
	}
	accepted.Range(func(k, _ any) bool { check(k.(string)); return true })

	c := m.Counts()
	if c.Active() != 0 {
		t.Errorf("Counts().Active() = %d after drain, want 0 (%+v)", c.Active(), c)
	}
	if got := int64(c.Done); got != acceptedN.Load()+int64(len(blockers)) {
		t.Errorf("Counts().Done = %d, want %d", got, acceptedN.Load()+int64(len(blockers)))
	}
	if m.QueueDepth() != 0 {
		t.Errorf("QueueDepth() = %d after drain, want 0", m.QueueDepth())
	}

	// Worker goroutines must all exit after Shutdown.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutine leak after storm: %d before, %d after\n%s",
		baseline, runtime.NumGoroutine(), buf[:n])
}

// TestCountsCensus walks one job through its lifecycle and checks the
// census at each step.
func TestCountsCensus(t *testing.T) {
	m := NewManager(context.Background(), Config{Workers: 1, Depth: 2})
	defer m.Shutdown(context.Background())

	started := make(chan struct{})
	release := make(chan struct{})
	if _, err := m.Submit(func(ctx context.Context) (any, error) {
		close(started)
		<-release
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	<-started
	if c := m.Counts(); c.Running != 1 || c.Active() != 1 {
		t.Errorf("while running: %+v", c)
	}

	id, err := m.Submit(func(ctx context.Context) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	if c := m.Counts(); c.Pending != 1 || c.Active() != 2 {
		t.Errorf("with one queued: %+v", c)
	}
	if d := m.QueueDepth(); d != 1 {
		t.Errorf("QueueDepth() = %d, want 1", d)
	}

	close(release)
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if snap.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queued job stuck in %s", snap.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if c := m.Counts(); c.Active() != 0 || c.Done != 2 {
		t.Errorf("after drain: %+v", c)
	}
}
