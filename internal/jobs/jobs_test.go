package jobs

import (
	"context"
	"errors"
	"testing"
	"time"
)

// waitState polls until the job reaches a terminal state or times out.
func waitState(t *testing.T, m *Manager, id string, want State) Snapshot {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		snap, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if snap.State == want {
			return snap
		}
		if snap.State.Terminal() {
			t.Fatalf("job %s reached %s, want %s (err %q)", id, snap.State, want, snap.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return Snapshot{}
}

func TestJobLifecycleDone(t *testing.T) {
	m := NewManager(context.Background(), Config{Workers: 2, Depth: 4})
	defer m.Shutdown(context.Background())
	id, err := m.Submit(func(context.Context) (any, error) { return 42, nil })
	if err != nil {
		t.Fatal(err)
	}
	snap := waitState(t, m, id, StateDone)
	if snap.Result != 42 {
		t.Errorf("result = %v, want 42", snap.Result)
	}
	if snap.Created.IsZero() || snap.Started == nil || snap.Finished == nil {
		t.Errorf("timestamps not all set: %+v", snap)
	}
}

func TestJobFailed(t *testing.T) {
	m := NewManager(context.Background(), Config{Workers: 1, Depth: 4})
	defer m.Shutdown(context.Background())
	id, _ := m.Submit(func(context.Context) (any, error) {
		return nil, errors.New("boom")
	})
	snap := waitState(t, m, id, StateFailed)
	if snap.Error != "boom" {
		t.Errorf("error = %q", snap.Error)
	}
	if snap.Result != nil {
		t.Errorf("failed job leaked result %v", snap.Result)
	}
}

func TestCancelRunning(t *testing.T) {
	m := NewManager(context.Background(), Config{Workers: 1, Depth: 4})
	defer m.Shutdown(context.Background())
	started := make(chan struct{})
	id, _ := m.Submit(func(ctx context.Context) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	<-started
	if _, err := m.Cancel(id); err != nil {
		t.Fatal(err)
	}
	waitState(t, m, id, StateCanceled)
}

func TestCancelPending(t *testing.T) {
	m := NewManager(context.Background(), Config{Workers: 1, Depth: 4})
	defer m.Shutdown(context.Background())
	block := make(chan struct{})
	started := make(chan struct{})
	m.Submit(func(context.Context) (any, error) {
		close(started)
		<-block
		return nil, nil
	})
	<-started // the single worker is now occupied
	id, _ := m.Submit(func(context.Context) (any, error) { return "ran", nil })
	snap, err := m.Cancel(id)
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != StateCanceled {
		t.Fatalf("pending cancel state = %s", snap.State)
	}
	close(block)
	// The worker must skip the canceled job, not run it.
	time.Sleep(50 * time.Millisecond)
	if snap, _ := m.Get(id); snap.State != StateCanceled || snap.Result != nil {
		t.Errorf("canceled job ran anyway: %+v", snap)
	}
}

func TestQueueFull(t *testing.T) {
	m := NewManager(context.Background(), Config{Workers: 1, Depth: 1})
	defer m.Shutdown(context.Background())
	block := make(chan struct{})
	defer close(block)
	started := make(chan struct{})
	m.Submit(func(context.Context) (any, error) { close(started); <-block; return nil, nil })
	<-started
	m.Submit(func(context.Context) (any, error) { return nil, nil }) // fills the queue
	_, err := m.Submit(func(context.Context) (any, error) { return nil, nil })
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if n := m.Len(); n != 2 {
		t.Errorf("rejected job still tracked: len = %d", n)
	}
}

func TestJobTimeout(t *testing.T) {
	m := NewManager(context.Background(), Config{Workers: 1, Depth: 2, JobTimeout: 20 * time.Millisecond})
	defer m.Shutdown(context.Background())
	id, _ := m.Submit(func(ctx context.Context) (any, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	// A deadline kill is a cancellation, not a failure of the fn; the
	// deadline error text must survive so callers can tell the two apart.
	snap := waitState(t, m, id, StateCanceled)
	if snap.Error != context.DeadlineExceeded.Error() {
		t.Errorf("timeout error = %q, want %q", snap.Error, context.DeadlineExceeded)
	}
}

func TestShutdownDrains(t *testing.T) {
	m := NewManager(context.Background(), Config{Workers: 2, Depth: 8})
	var ids []string
	for i := 0; i < 5; i++ {
		id, err := m.Submit(func(context.Context) (any, error) {
			time.Sleep(10 * time.Millisecond)
			return "ok", nil
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		snap, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if snap.State != StateDone {
			t.Errorf("job %s = %s after drain, want done", id, snap.State)
		}
	}
	if _, err := m.Submit(func(context.Context) (any, error) { return nil, nil }); !errors.Is(err, ErrShuttingDown) {
		t.Errorf("post-shutdown submit err = %v", err)
	}
	if err := m.Shutdown(context.Background()); err != nil {
		t.Errorf("second shutdown: %v", err)
	}
}

func TestShutdownDeadline(t *testing.T) {
	m := NewManager(context.Background(), Config{Workers: 1, Depth: 2})
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	m.Submit(func(context.Context) (any, error) { close(started); <-release; return nil, nil })
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := m.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestGetUnknown(t *testing.T) {
	m := NewManager(context.Background(), Config{Workers: 1, Depth: 1})
	defer m.Shutdown(context.Background())
	if _, err := m.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get err = %v", err)
	}
	if _, err := m.Cancel("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Cancel err = %v", err)
	}
}
