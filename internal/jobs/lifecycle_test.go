package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSubmitShutdownRace hammers Submit against Shutdown: before the
// enqueue was moved under the manager lock, this reliably panicked with
// "send on closed channel" under -race. Every Submit must either succeed or
// fail cleanly with ErrShuttingDown/ErrQueueFull.
func TestSubmitShutdownRace(t *testing.T) {
	for iter := 0; iter < 50; iter++ {
		m := NewManager(context.Background(), Config{Workers: 2, Depth: 4})
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 20; i++ {
					_, err := m.Submit(func(context.Context) (any, error) { return nil, nil })
					if err != nil && !errors.Is(err, ErrShuttingDown) && !errors.Is(err, ErrQueueFull) {
						t.Errorf("Submit: unexpected error %v", err)
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if err := m.Shutdown(context.Background()); err != nil {
				t.Errorf("Shutdown: %v", err)
			}
		}()
		close(start)
		wg.Wait()
	}
}

// TestShutdownTimeoutNoOrphans submits more jobs than the workers can
// finish before the shutdown context expires and asserts that no job is
// left non-terminal once Shutdown returns: queued jobs must be drained and
// marked canceled with a finish timestamp, not stranded pending forever.
func TestShutdownTimeoutNoOrphans(t *testing.T) {
	m := NewManager(context.Background(), Config{Workers: 1, Depth: 8})
	release := make(chan struct{})
	defer close(release)
	started := make(chan struct{})
	var ids []string
	id, _ := m.Submit(func(ctx context.Context) (any, error) {
		close(started)
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, ctx.Err()
	})
	ids = append(ids, id)
	<-started
	for i := 0; i < 5; i++ {
		id, err := m.Submit(func(context.Context) (any, error) { return nil, nil })
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := m.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown err = %v, want DeadlineExceeded", err)
	}

	// The running job had its context canceled by the expired shutdown and
	// may need a moment to observe it; queued jobs must already be terminal.
	deadline := time.Now().Add(2 * time.Second)
	for _, id := range ids[1:] {
		snap, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if !snap.State.Terminal() {
			t.Errorf("queued job %s = %s after Shutdown returned, want terminal", id, snap.State)
		}
		if snap.State == StateCanceled && snap.Finished == nil {
			t.Errorf("canceled job %s has no finish timestamp", id)
		}
	}
	for {
		snap, err := m.Get(ids[0])
		if err != nil {
			t.Fatal(err)
		}
		if snap.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("running job %s never terminated after expired shutdown", ids[0])
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSnapshotTimestampJSON pins the wire format: a pending job's snapshot
// must not serialize zero started/finished timestamps.
func TestSnapshotTimestampJSON(t *testing.T) {
	m := NewManager(context.Background(), Config{Workers: 1, Depth: 4})
	defer m.Shutdown(context.Background())
	block := make(chan struct{})
	started := make(chan struct{})
	m.Submit(func(context.Context) (any, error) { close(started); <-block; return nil, nil })
	<-started
	id, _ := m.Submit(func(context.Context) (any, error) { return nil, nil })
	snap, err := m.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), "0001-01-01") {
		t.Errorf("pending snapshot serializes zero timestamps: %s", raw)
	}
	if strings.Contains(string(raw), `"started"`) || strings.Contains(string(raw), `"finished"`) {
		t.Errorf("pending snapshot has started/finished keys: %s", raw)
	}
	close(block)
	snap = waitState(t, m, id, StateDone)
	raw, _ = json.Marshal(snap)
	if !strings.Contains(string(raw), `"started"`) || !strings.Contains(string(raw), `"finished"`) {
		t.Errorf("done snapshot missing timestamps: %s", raw)
	}
}

// TestRetentionMaxTerminal checks the bounded-table policy: only the newest
// MaxTerminal terminal jobs survive, evicted IDs report ErrNotFound, and
// the eviction callback sees the total count.
func TestRetentionMaxTerminal(t *testing.T) {
	var evicted atomic.Int64
	m := NewManager(context.Background(), Config{
		Workers:     2,
		Depth:       4,
		MaxTerminal: 3,
		OnEvict:     func(n int) { evicted.Add(int64(n)) },
	})
	defer m.Shutdown(context.Background())

	var ids []string
	for i := 0; i < 10; i++ {
		id, err := m.Submit(func(context.Context) (any, error) { return nil, nil })
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, m, id, StateDone)
		ids = append(ids, id)
	}
	// Eviction runs on Submit; one more triggers a final pass over the 10
	// terminal jobs.
	id, err := m.Submit(func(context.Context) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, id, StateDone)

	gone := 0
	for _, old := range ids {
		if _, err := m.Get(old); errors.Is(err, ErrNotFound) {
			gone++
		}
	}
	if gone < len(ids)-3 {
		t.Errorf("%d of %d old jobs evicted, want at least %d", gone, len(ids), len(ids)-3)
	}
	if evicted.Load() == 0 {
		t.Error("OnEvict never reported an eviction")
	}
	if n := m.Len(); n > 4 { // 3 retained terminal + the latest
		t.Errorf("job table holds %d entries, want <= 4", n)
	}
}

// TestRetentionTTL checks time-based eviction.
func TestRetentionTTL(t *testing.T) {
	m := NewManager(context.Background(), Config{
		Workers:   1,
		Depth:     4,
		RetainTTL: 10 * time.Millisecond,
	})
	defer m.Shutdown(context.Background())
	id, _ := m.Submit(func(context.Context) (any, error) { return nil, nil })
	waitState(t, m, id, StateDone)
	time.Sleep(25 * time.Millisecond)
	id2, _ := m.Submit(func(context.Context) (any, error) { return nil, nil })
	waitState(t, m, id2, StateDone)
	if _, err := m.Get(id); !errors.Is(err, ErrNotFound) {
		t.Errorf("expired job still retrievable (err = %v)", err)
	}
	if _, err := m.Get(id2); err != nil {
		t.Errorf("fresh job evicted: %v", err)
	}
}

// TestRetentionNeverEvictsNonTerminal makes sure pending/running jobs are
// immune to retention regardless of age.
func TestRetentionNeverEvictsNonTerminal(t *testing.T) {
	m := NewManager(context.Background(), Config{
		Workers:     1,
		Depth:       8,
		RetainTTL:   time.Nanosecond,
		MaxTerminal: 1,
	})
	defer m.Shutdown(context.Background())
	release := make(chan struct{})
	defer close(release)
	started := make(chan struct{})
	running, _ := m.Submit(func(context.Context) (any, error) { close(started); <-release; return nil, nil })
	<-started
	pending, _ := m.Submit(func(context.Context) (any, error) { return nil, nil })
	for i := 0; i < 3; i++ {
		if _, err := m.Submit(func(context.Context) (any, error) { return nil, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Get(running); err != nil {
		t.Errorf("running job evicted: %v", err)
	}
	if _, err := m.Get(pending); err != nil {
		t.Errorf("pending job evicted: %v", err)
	}
}
