// Package jobs is a bounded async job queue with a fixed worker pool, used
// by cmd/hiposerve to run large placement solves off the request path. Each
// job is a context-aware function; the manager tracks its lifecycle
// (pending → running → done/failed/canceled), enforces an optional per-job
// deadline, supports cancellation of both queued and running jobs, drains
// running work on graceful shutdown, and evicts old terminal jobs under a
// configurable retention policy so the job table cannot grow without bound.
//
//hipo:allow-wallclock job lifecycle timestamps and deadline enforcement require real time
package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// State is a job's lifecycle phase.
type State string

// Job states. Pending jobs sit in the queue; Running jobs occupy a worker;
// the remaining states are terminal.
const (
	StatePending  State = "pending"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Fn is the unit of work: it must honor ctx and return either a result or
// an error. The result is stored as-is in the job snapshot.
type Fn func(ctx context.Context) (any, error)

// Errors returned by Submit and lookup operations.
var (
	ErrQueueFull    = errors.New("jobs: queue full")
	ErrShuttingDown = errors.New("jobs: manager shutting down")
	ErrNotFound     = errors.New("jobs: no such job")
)

// Snapshot is a point-in-time copy of a job's externally visible state.
// Started and Finished are nil until the job starts / finishes, so pending
// jobs never serialize the zero time (0001-01-01T00:00:00Z).
type Snapshot struct {
	ID       string     `json:"id"`
	State    State      `json:"state"`
	Result   any        `json:"result,omitempty"`
	Error    string     `json:"error,omitempty"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
}

type job struct {
	id       string
	fn       Fn
	state    State
	result   any
	err      error
	created  time.Time
	started  time.Time
	finished time.Time
	// cancel is non-nil while the job runs; calling it interrupts the fn
	// through its context.
	cancel context.CancelFunc
}

// Config tunes a Manager. The zero value is usable: one worker, a
// one-deep queue, no per-job deadline, and no retention limits (terminal
// jobs are kept until Shutdown).
type Config struct {
	// Workers is the worker-pool size (min 1).
	Workers int
	// Depth is the queue capacity (min 1).
	Depth int
	// JobTimeout, when positive, bounds each job's execution time; a job
	// killed by it reports state canceled with the deadline error text.
	JobTimeout time.Duration
	// RetainTTL, when positive, evicts terminal jobs whose finish time is
	// older than the TTL. Evicted IDs report ErrNotFound.
	RetainTTL time.Duration
	// MaxTerminal, when positive, caps the number of terminal jobs kept;
	// the oldest-finished are evicted first.
	MaxTerminal int
	// OnEvict, when non-nil, is called with the number of jobs evicted by
	// each retention pass (e.g. to feed a metrics counter). Called without
	// the manager lock held.
	OnEvict func(n int)
}

// Manager owns the queue, the worker pool, and the job table.
type Manager struct {
	base context.Context
	cfg  Config

	// queue receives lock-free in the workers; sends and the close are
	// serialized by mu so a Submit can never race Shutdown's close.
	queue chan *job

	mu sync.Mutex
	// guarded by mu
	jobs map[string]*job
	// guarded by mu; terminal job IDs in finish order, for retention.
	terminal []string
	// guarded by mu
	closed  bool
	stop    chan struct{}
	workers sync.WaitGroup
}

// NewManager starts cfg.Workers goroutines consuming a queue of depth
// cfg.Depth. base is the root of every job context: canceling it (e.g. on
// process shutdown) interrupts all running jobs.
func NewManager(base context.Context, cfg Config) *Manager {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Depth <= 0 {
		cfg.Depth = 1
	}
	m := &Manager{
		base:  base,
		cfg:   cfg,
		queue: make(chan *job, cfg.Depth),
		jobs:  make(map[string]*job),
		stop:  make(chan struct{}),
	}
	m.workers.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go m.worker()
	}
	return m
}

func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is unrecoverable for ID uniqueness.
		panic(fmt.Sprintf("jobs: id generation: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// Submit enqueues fn and returns the new job's ID. It fails fast with
// ErrQueueFull when the queue is at capacity and ErrShuttingDown after
// Shutdown has begun. The enqueue happens under the manager lock — the same
// lock Shutdown holds while closing the queue — so a Submit racing a
// Shutdown can never send on a closed channel.
func (m *Manager) Submit(fn Fn) (string, error) {
	j := &job{id: newID(), fn: fn, state: StatePending, created: time.Now()}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return "", ErrShuttingDown
	}
	evicted := m.evictLocked(time.Now())
	select {
	case m.queue <- j:
	default:
		m.mu.Unlock()
		m.notifyEvict(evicted)
		return "", ErrQueueFull
	}
	m.jobs[j.id] = j
	m.mu.Unlock()
	m.notifyEvict(evicted)
	return j.id, nil
}

// Get returns a snapshot of the job. Jobs evicted by the retention policy
// report ErrNotFound, like jobs that never existed.
func (m *Manager) Get(id string) (Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Snapshot{}, ErrNotFound
	}
	return j.snapshot(), nil
}

// Cancel requests cancellation: a pending job is marked canceled and will
// be skipped by the workers; a running job has its context canceled and
// reaches the canceled state once its fn observes the context. Canceling a
// job already in a terminal state is a no-op; the returned snapshot shows
// the state after the request.
func (m *Manager) Cancel(id string) (Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Snapshot{}, ErrNotFound
	}
	switch j.state {
	case StatePending:
		m.finishLocked(j, StateCanceled, nil)
	case StateRunning:
		if j.cancel != nil {
			j.cancel()
		}
	}
	return j.snapshot(), nil
}

// Len returns the number of tracked jobs (all states).
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.jobs)
}

// QueueDepth returns the number of jobs buffered in the queue waiting for a
// worker. It can momentarily disagree with Counts().Pending: a job a worker
// has dequeued but not yet transitioned stays pending while off the queue.
func (m *Manager) QueueDepth() int {
	return len(m.queue)
}

// Counts is a point-in-time census of tracked jobs by state.
type Counts struct {
	Pending, Running, Done, Failed, Canceled int
}

// Active returns the number of non-terminal jobs.
func (c Counts) Active() int { return c.Pending + c.Running }

// Counts tallies the tracked jobs by state (evicted jobs are gone and not
// counted). An idle manager with an empty queue reports Active() == 0,
// which load harnesses use as the "fully drained" invariant.
func (m *Manager) Counts() Counts {
	m.mu.Lock()
	defer m.mu.Unlock()
	var c Counts
	for _, id := range m.idsLocked() {
		switch m.jobs[id].state {
		case StatePending:
			c.Pending++
		case StateRunning:
			c.Running++
		case StateDone:
			c.Done++
		case StateFailed:
			c.Failed++
		case StateCanceled:
			c.Canceled++
		}
	}
	return c
}

// Shutdown stops accepting new jobs and waits for the workers to finish
// the jobs already queued or running, or for ctx to expire — whichever
// comes first. On ctx expiry the workers are told to stop after their
// current job, running jobs have their contexts canceled, and every job
// still queued is drained and marked canceled with a finish timestamp, so
// no job is ever left pending forever; Shutdown then returns ctx's error.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	// Closing under the same lock Submit sends under makes send-on-closed
	// impossible: every Submit either observed closed above or completed
	// its send before this close.
	close(m.queue)
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		close(m.stop)
		m.abandon()
		return ctx.Err()
	}
}

// abandon handles the expired-shutdown path: it drains the (closed) queue,
// marking every still-pending job canceled, and cancels the contexts of
// running jobs so they terminate as soon as their fn observes the context.
func (m *Manager) abandon() {
	// The queue is already closed, so the range ends once the buffered jobs
	// (shared with any still-draining workers) are consumed.
	for j := range m.queue {
		m.discard(j)
	}
	m.mu.Lock()
	// Cancel in sorted-ID order so the abandonment sequence — observable
	// through each job's context and finish timestamps — is reproducible.
	for _, id := range m.idsLocked() {
		if j := m.jobs[id]; j.state == StateRunning && j.cancel != nil {
			j.cancel()
		}
	}
	m.mu.Unlock()
}

// idsLocked returns the tracked job IDs in sorted order. Multi-job walks
// (state tallies, mass cancellation) go through it so their effect order
// never depends on map iteration. Must be called with m.mu held.
func (m *Manager) idsLocked() []string {
	ids := make([]string, 0, len(m.jobs))
	for id := range m.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// discard marks a dequeued job canceled unless it already left pending.
func (m *Manager) discard(j *job) {
	m.mu.Lock()
	if j.state == StatePending {
		m.finishLocked(j, StateCanceled, context.Canceled)
	}
	m.mu.Unlock()
}

func (m *Manager) worker() {
	defer m.workers.Done()
	for j := range m.queue {
		select {
		case <-m.stop:
			// Expired shutdown: stop running new work but keep draining so
			// every queued job reaches a terminal state.
			m.discard(j)
			continue
		default:
		}
		m.run(j)
	}
}

func (m *Manager) run(j *job) {
	ctx := m.base
	var cancel context.CancelFunc
	if m.cfg.JobTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, m.cfg.JobTimeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	m.mu.Lock()
	if j.state != StatePending { // canceled while queued
		m.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	// An expired Shutdown cancels running jobs under mu; if its sweep ran
	// between the worker's stop check and this registration, it missed us —
	// observe stop here so the job still gets canceled promptly.
	select {
	case <-m.stop:
		cancel()
	default:
	}
	m.mu.Unlock()

	res, err := j.fn(ctx)

	m.mu.Lock()
	defer m.mu.Unlock()
	j.cancel = nil
	switch {
	case err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)):
		// Both context terminations — explicit Cancel and the per-job
		// deadline — are cancellations, not failures of the fn itself. The
		// error text is preserved so callers can tell them apart.
		m.finishLocked(j, StateCanceled, err)
	case err != nil:
		m.finishLocked(j, StateFailed, err)
	default:
		j.result = res
		m.finishLocked(j, StateDone, nil)
	}
}

// finishLocked moves a job to a terminal state, stamps its finish time, and
// registers it with the retention list. Must be called with m.mu held.
func (m *Manager) finishLocked(j *job, s State, err error) {
	j.state = s
	j.err = err
	j.finished = time.Now()
	m.terminal = append(m.terminal, j.id)
}

// evictLocked applies the retention policy and returns the number of
// terminal jobs evicted. Must be called with m.mu held; callers report the
// count via notifyEvict after unlocking.
func (m *Manager) evictLocked(now time.Time) int {
	cut := 0
	if ttl := m.cfg.RetainTTL; ttl > 0 {
		for cut < len(m.terminal) {
			j, ok := m.jobs[m.terminal[cut]]
			if ok && now.Sub(j.finished) <= ttl {
				break
			}
			cut++
		}
	}
	if max := m.cfg.MaxTerminal; max > 0 && len(m.terminal)-cut > max {
		cut = len(m.terminal) - max
	}
	if cut == 0 {
		return 0
	}
	n := 0
	for _, id := range m.terminal[:cut] {
		if _, ok := m.jobs[id]; ok {
			delete(m.jobs, id)
			n++
		}
	}
	m.terminal = append(m.terminal[:0], m.terminal[cut:]...)
	return n
}

// notifyEvict reports an eviction count to the OnEvict callback, if any.
func (m *Manager) notifyEvict(n int) {
	if n > 0 && m.cfg.OnEvict != nil {
		m.cfg.OnEvict(n)
	}
}

func (j *job) snapshot() Snapshot {
	s := Snapshot{
		ID:      j.id,
		State:   j.state,
		Created: j.created,
	}
	if !j.started.IsZero() {
		t := j.started
		s.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		s.Finished = &t
	}
	if j.state == StateDone {
		s.Result = j.result
	}
	if j.err != nil {
		s.Error = j.err.Error()
	}
	return s
}
