// Package jobs is a bounded async job queue with a fixed worker pool, used
// by cmd/hiposerve to run large placement solves off the request path. Each
// job is a context-aware function; the manager tracks its lifecycle
// (pending → running → done/failed/canceled), enforces an optional per-job
// deadline, supports cancellation of both queued and running jobs, and
// drains running work on graceful shutdown.
package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"
)

// State is a job's lifecycle phase.
type State string

// Job states. Pending jobs sit in the queue; Running jobs occupy a worker;
// the remaining states are terminal.
const (
	StatePending  State = "pending"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Fn is the unit of work: it must honor ctx and return either a result or
// an error. The result is stored as-is in the job snapshot.
type Fn func(ctx context.Context) (any, error)

// Errors returned by Submit and lookup operations.
var (
	ErrQueueFull    = errors.New("jobs: queue full")
	ErrShuttingDown = errors.New("jobs: manager shutting down")
	ErrNotFound     = errors.New("jobs: no such job")
)

// Snapshot is a point-in-time copy of a job's externally visible state.
type Snapshot struct {
	ID       string    `json:"id"`
	State    State     `json:"state"`
	Result   any       `json:"result,omitempty"`
	Error    string    `json:"error,omitempty"`
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started"`
	Finished time.Time `json:"finished"`
}

type job struct {
	id       string
	fn       Fn
	state    State
	result   any
	err      error
	created  time.Time
	started  time.Time
	finished time.Time
	// cancel is non-nil while the job runs; calling it interrupts the fn
	// through its context.
	cancel context.CancelFunc
}

// Manager owns the queue, the worker pool, and the job table.
type Manager struct {
	base    context.Context
	queue   chan *job
	timeout time.Duration

	mu sync.Mutex
	// guarded by mu
	jobs map[string]*job
	// guarded by mu
	closed  bool
	stop    chan struct{}
	workers sync.WaitGroup
}

// NewManager starts workers goroutines consuming a queue of the given
// depth. base is the root of every job context: canceling it (e.g. on
// process shutdown) interrupts all running jobs. jobTimeout, when
// positive, bounds each job's execution time.
func NewManager(base context.Context, workers, depth int, jobTimeout time.Duration) *Manager {
	if workers <= 0 {
		workers = 1
	}
	if depth <= 0 {
		depth = 1
	}
	m := &Manager{
		base:    base,
		queue:   make(chan *job, depth),
		timeout: jobTimeout,
		jobs:    make(map[string]*job),
		stop:    make(chan struct{}),
	}
	m.workers.Add(workers)
	for i := 0; i < workers; i++ {
		go m.worker()
	}
	return m
}

func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is unrecoverable for ID uniqueness.
		panic(fmt.Sprintf("jobs: id generation: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// Submit enqueues fn and returns the new job's ID. It fails fast with
// ErrQueueFull when the queue is at capacity and ErrShuttingDown after
// Shutdown has begun.
func (m *Manager) Submit(fn Fn) (string, error) {
	j := &job{id: newID(), fn: fn, state: StatePending, created: time.Now()}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return "", ErrShuttingDown
	}
	m.jobs[j.id] = j
	m.mu.Unlock()
	select {
	case m.queue <- j:
		return j.id, nil
	default:
		m.mu.Lock()
		delete(m.jobs, j.id)
		m.mu.Unlock()
		return "", ErrQueueFull
	}
}

// Get returns a snapshot of the job.
func (m *Manager) Get(id string) (Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Snapshot{}, ErrNotFound
	}
	return j.snapshot(), nil
}

// Cancel requests cancellation: a pending job is marked canceled and will
// be skipped by the workers; a running job has its context canceled and
// reaches the canceled state once its fn observes the context. Canceling a
// job already in a terminal state is a no-op; the returned snapshot shows
// the state after the request.
func (m *Manager) Cancel(id string) (Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Snapshot{}, ErrNotFound
	}
	switch j.state {
	case StatePending:
		j.state = StateCanceled
		j.finished = time.Now()
	case StateRunning:
		if j.cancel != nil {
			j.cancel()
		}
	}
	return j.snapshot(), nil
}

// Len returns the number of tracked jobs (all states).
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.jobs)
}

// Shutdown stops accepting new jobs and waits for the workers to finish
// the jobs already queued or running, or for ctx to expire — whichever
// comes first. On ctx expiry the workers are told to stop after their
// current job and Shutdown returns ctx's error without waiting further.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.mu.Unlock()
	close(m.queue)

	done := make(chan struct{})
	go func() {
		m.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		close(m.stop)
		return ctx.Err()
	}
}

func (m *Manager) worker() {
	defer m.workers.Done()
	for j := range m.queue {
		select {
		case <-m.stop:
			return
		default:
		}
		m.run(j)
	}
}

func (m *Manager) run(j *job) {
	ctx := m.base
	var cancel context.CancelFunc
	if m.timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, m.timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	m.mu.Lock()
	if j.state != StatePending { // canceled while queued
		m.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	m.mu.Unlock()

	res, err := j.fn(ctx)

	m.mu.Lock()
	defer m.mu.Unlock()
	j.finished = time.Now()
	j.cancel = nil
	switch {
	case err != nil && errors.Is(err, context.Canceled):
		j.state = StateCanceled
		j.err = err
	case err != nil:
		j.state = StateFailed
		j.err = err
	default:
		j.state = StateDone
		j.result = res
	}
}

func (j *job) snapshot() Snapshot {
	s := Snapshot{
		ID:       j.id,
		State:    j.state,
		Created:  j.created,
		Started:  j.started,
		Finished: j.finished,
	}
	if j.state == StateDone {
		s.Result = j.result
	}
	if j.err != nil {
		s.Error = j.err.Error()
	}
	return s
}
