package expt

import (
	"math/rand"

	"hipo/internal/geom"
	"hipo/internal/model"
)

// RandomObstacles returns n seeded random star-shaped simple polygons, each
// fully inside the default AreaSide × AreaSide plane. Successive calls with
// the same rng state reproduce the same field; rejected candidates (those
// poking outside the plane) consume rng draws, so the stream position after
// the call is also deterministic.
func RandomObstacles(rng *rand.Rand, n int) []model.Obstacle {
	var out []model.Obstacle
	for len(out) < n {
		c := geom.V(5+rng.Float64()*30, 5+rng.Float64()*30)
		poly := geom.RandomSimplePolygon(rng, c, 1, 3, 3+rng.Intn(6))
		lo, hi := poly.BoundingBox()
		if lo.X < 0 || lo.Y < 0 || hi.X > AreaSide || hi.Y > AreaSide {
			continue
		}
		out = append(out, model.Obstacle{Shape: poly})
	}
	return out
}

// BenchScenario builds the Tables 2–4 hardware with nObstacles seeded
// random obstacles and a device population scaled by deviceMult
// (≤ 0 means the paper default). It is the deterministic scenario
// trajectory of cmd/hipobench: one seed pins the whole scene.
func BenchScenario(seed int64, nObstacles, deviceMult int) *model.Scenario {
	if deviceMult <= 0 {
		deviceMult = DefaultDeviceMult
	}
	sc := BaseScenario()
	sc.Obstacles = nil
	rng := rand.New(rand.NewSource(seed))
	for q := range sc.ChargerTypes {
		sc.ChargerTypes[q].Count = initialChargerCounts[q] * DefaultChargerMult
	}
	sc.Obstacles = RandomObstacles(rng, nObstacles)
	counts := make([]int, len(sc.DeviceTypes))
	for t := range counts {
		counts[t] = initialDeviceCounts[t] * deviceMult
	}
	PlaceRandomDevices(sc, rng, counts)
	return sc
}
