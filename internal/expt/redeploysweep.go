package expt

import (
	"math"
	"math/rand"

	"hipo/internal/core"
	"hipo/internal/geom"
	"hipo/internal/model"
	"hipo/internal/redeploy"
)

// RunRedeployOverheadSweep quantifies Section 8.1 beyond the paper's toy
// example: as a growing fraction of devices relocates overnight, how much
// switching overhead do the two redeployment objectives incur? For each
// perturbation fraction, the scenario is re-solved and the min-total and
// min-max plans computed; reported are the total overhead of the min-total
// plan and the bottleneck (max single-charger) overhead of the min-max
// plan, averaged over rc.Runs topologies.
func RunRedeployOverheadSweep(rc RunConfig) Figure {
	rc = rc.withDefaults()
	fractions := []float64{0.1, 0.25, 0.5, 0.75, 1.0}
	total := Series{Label: "min-total plan: total overhead", X: fractions,
		Y: make([]float64, len(fractions)), Err: make([]float64, len(fractions))}
	bottleneck := Series{Label: "min-max plan: max overhead", X: fractions,
		Y: make([]float64, len(fractions)), Err: make([]float64, len(fractions))}
	cm := redeploy.DefaultCostModel()

	for fi, f := range fractions {
		var accT, accB Welford
		for r := 0; r < rc.Runs; r++ {
			seed := rc.Seed + int64(r)
			old := BuildScenario(Params{Seed: seed})
			new_ := perturbDevices(old, f, seed+500)
			opt := core.Options{Eps: rc.Eps, Workers: rc.Workers}
			oldSol, err1 := core.Solve(old, opt)
			newSol, err2 := core.Solve(new_, opt)
			if err1 != nil || err2 != nil {
				continue
			}
			oldP := padPlacement(old, oldSol.Placed)
			newP := padPlacement(new_, newSol.Placed)
			nTypes := len(old.ChargerTypes)
			mt, err1 := redeploy.MinTotal(oldP, newP, nTypes, cm)
			mm, err2 := redeploy.MinMax(oldP, newP, nTypes, cm)
			if err1 != nil || err2 != nil {
				continue
			}
			accT.Add(mt.Total)
			accB.Add(mm.Max)
		}
		total.Y[fi], total.Err[fi] = accT.Mean(), accT.Std()
		bottleneck.Y[fi], bottleneck.Err[fi] = accB.Mean(), accB.Std()
	}
	return Figure{
		ID: "redeploy-sweep", Title: "Redeployment overhead vs topology churn (Section 8.1)",
		XLabel: "fraction of devices relocated", YLabel: "switching overhead",
		Series: []Series{total, bottleneck},
	}
}

// perturbDevices returns a copy of the scenario with a `fraction` of the
// devices moved to fresh random feasible positions and orientations.
func perturbDevices(sc *model.Scenario, fraction float64, seed int64) *model.Scenario {
	out := sc.Clone()
	rng := rand.New(rand.NewSource(seed))
	n := int(math.Round(fraction * float64(len(out.Devices))))
	perm := rng.Perm(len(out.Devices))
	for _, idx := range perm[:n] {
		for {
			p := geom.V(
				out.Region.Min.X+rng.Float64()*out.Region.Width(),
				out.Region.Min.Y+rng.Float64()*out.Region.Height(),
			)
			if out.FeasiblePosition(p) {
				out.Devices[idx].Pos = p
				out.Devices[idx].Orient = rng.Float64() * 2 * math.Pi
				break
			}
		}
	}
	return out
}
