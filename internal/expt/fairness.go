package expt

import (
	"hipo/internal/core"
	"hipo/internal/fairness"
	"hipo/internal/model"
	"hipo/internal/power"
)

// RunFairnessComparison evaluates the charging-utility balancing heuristics
// of Section 8.3 — simulated annealing, particle swarm, and ant colony —
// against the plain utility-maximizing greedy and the proportional-fairness
// greedy, on the default scenario. The paper proposes these heuristics
// without evaluating them; this experiment fills that gap. Reported series:
// the max-min objective (minimum device utility), total utility, and Jain's
// fairness index, averaged over rc.Runs topologies.
func RunFairnessComparison(rc RunConfig) Figure {
	rc = rc.withDefaults()
	names := []string{"Greedy", "PropFair", "MaxMin-SA", "MaxMin-PSO", "MaxMin-ACO"}
	// Metric order on the X axis: 0 = min utility, 1 = total utility,
	// 2 = Jain index.
	xs := []float64{0, 1, 2}
	acc := make(map[string][]Welford)
	for _, n := range names {
		acc[n] = make([]Welford, len(xs))
	}

	for r := 0; r < rc.Runs; r++ {
		seed := rc.Seed + int64(r)
		sc := BuildScenario(Params{Seed: seed})
		opt := core.Options{Eps: rc.Eps, Workers: rc.Workers}

		add := func(name string, placed []model.Strategy) {
			us := power.DeviceUtilities(sc, placed)
			minU := 1.0
			for _, u := range us {
				if u < minU {
					minU = u
				}
			}
			if len(us) == 0 {
				minU = 0
			}
			acc[name][0].Add(minU)
			acc[name][1].Add(power.TotalUtility(sc, placed))
			acc[name][2].Add(fairness.JainIndex(us))
		}

		if sol, err := core.Solve(sc, opt); err == nil {
			add("Greedy", sol.Placed)
		}
		if sol, err := fairness.ProportionalFair(sc, opt); err == nil {
			add("PropFair", sol.Placed)
		}
		sa := fairness.DefaultSAOptions()
		sa.Iterations = 800
		sa.Seed = seed
		if placed, _, err := fairness.MaxMinSA(sc, opt, sa); err == nil {
			add("MaxMin-SA", placed)
		}
		pso := fairness.DefaultPSOOptions()
		pso.Particles = 15
		pso.Iterations = 60
		pso.Seed = seed
		placedPSO, _ := fairness.MaxMinPSO(sc, pso)
		add("MaxMin-PSO", placedPSO)
		aco := fairness.DefaultACOOptions()
		aco.Iterations = 30
		aco.Seed = seed
		if placed, _, err := fairness.MaxMinACO(sc, opt, aco); err == nil {
			add("MaxMin-ACO", placed)
		}
	}

	fig := Figure{
		ID: "fairness", Title: "Utility balancing heuristics (Section 8.3)",
		XLabel: "metric (0=min utility, 1=total utility, 2=Jain index)",
		YLabel: "value",
	}
	for _, n := range names {
		s := Series{Label: n, X: xs, Y: make([]float64, len(xs)), Err: make([]float64, len(xs))}
		for i := range xs {
			s.Y[i] = acc[n][i].Mean()
			s.Err[i] = acc[n][i].Std()
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}
