package expt

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"hipo/internal/baselines"
	"hipo/internal/core"
	"hipo/internal/model"
)

func fastRC() RunConfig {
	return RunConfig{Runs: 1, Seed: 7, Eps: 0.15,
		Algorithms: []string{baselines.NameHIPO, baselines.NameRPAR, baselines.NameGPADSquare}}
}

func TestBuildScenarioDefaults(t *testing.T) {
	sc := BuildScenario(Params{Seed: 1})
	if err := sc.Validate(); err != nil {
		t.Fatalf("default scenario invalid: %v", err)
	}
	// Default: chargers 3×(1,2,3) = 18, devices 4×(4,3,2,1) = 40.
	if got := sc.TotalChargers(); got != 18 {
		t.Errorf("chargers = %d, want 18", got)
	}
	if got := len(sc.Devices); got != 40 {
		t.Errorf("devices = %d, want 40", got)
	}
	if len(sc.Obstacles) != 2 {
		t.Errorf("obstacles = %d, want 2", len(sc.Obstacles))
	}
	// Table 2 spot checks.
	if sc.ChargerTypes[0].Alpha != math.Pi/6 || sc.ChargerTypes[0].DMin != 5 || sc.ChargerTypes[0].DMax != 10 {
		t.Error("charger type 1 params wrong")
	}
	// Table 4 spot checks.
	if sc.Power[2][3].A != 210 || sc.Power[2][3].B != 84 {
		t.Error("power matrix corner wrong")
	}
	// Determinism.
	sc2 := BuildScenario(Params{Seed: 1})
	for i := range sc.Devices {
		if !sc.Devices[i].Pos.Eq(sc2.Devices[i].Pos) {
			t.Fatal("scenario generation not deterministic")
		}
	}
}

func TestBuildScenarioScales(t *testing.T) {
	sc := BuildScenario(Params{AlphaSScale: 2, AlphaOScale: 0.5, Pth: 0.08,
		DminScale: 0.5, DmaxScale: 1.5, Seed: 2})
	if sc.ChargerTypes[0].Alpha != math.Pi/3 {
		t.Error("alpha_s scale wrong")
	}
	if sc.DeviceTypes[0].Alpha != math.Pi/4 {
		t.Error("alpha_o scale wrong")
	}
	if sc.DeviceTypes[0].PTh != 0.08 {
		t.Error("pth wrong")
	}
	if sc.ChargerTypes[0].DMin != 2.5 || sc.ChargerTypes[0].DMax != 15 {
		t.Error("distance scales wrong")
	}
	// Alpha capped at 2π.
	big := BuildScenario(Params{AlphaSScale: 100, Seed: 2})
	if big.ChargerTypes[0].Alpha > 2*math.Pi {
		t.Error("alpha not capped")
	}
	// Ratio override keeps rings valid.
	rt := BuildScenario(Params{DminOverDmax: 0.9, Seed: 2})
	for _, ct := range rt.ChargerTypes {
		if ct.DMin >= ct.DMax {
			t.Error("degenerate ring from ratio")
		}
		if math.Abs(ct.DMin/ct.DMax-0.9) > 1e-9 {
			t.Errorf("ratio = %v", ct.DMin/ct.DMax)
		}
	}
}

func TestBuildScenarioPthLadder(t *testing.T) {
	sc := BuildScenario(Params{EqualDeviceCounts: true, DeviceMult: 2,
		PthOffsets: []float64{-0.01, 0, 0.01, 0.02}, Seed: 3})
	if len(sc.Devices) != 16 { // 2 per type × mult 2 × 4 types
		t.Errorf("devices = %d, want 16", len(sc.Devices))
	}
	if math.Abs(sc.DeviceTypes[0].PTh-0.04) > 1e-12 {
		t.Errorf("type 0 Pth = %v", sc.DeviceTypes[0].PTh)
	}
	if math.Abs(sc.DeviceTypes[3].PTh-0.07) > 1e-12 {
		t.Errorf("type 3 Pth = %v", sc.DeviceTypes[3].PTh)
	}
}

func TestRunNsSweepShape(t *testing.T) {
	fig := RunNsSweep(fastRC())
	if fig.ID != "fig11a" || len(fig.Series) != 3 {
		t.Fatalf("fig = %s with %d series", fig.ID, len(fig.Series))
	}
	hipo := fig.FindSeries(baselines.NameHIPO)
	if hipo == nil {
		t.Fatal("no HIPO series")
	}
	// Monotone nondecreasing in Ns (more budget can't hurt the greedy).
	for i := 1; i < len(hipo.Y); i++ {
		if hipo.Y[i] < hipo.Y[i-1]-1e-9 {
			t.Errorf("HIPO utility decreased with more chargers at %d: %v",
				i, hipo.Y)
		}
	}
	// HIPO beats RPAR everywhere.
	rpar := fig.FindSeries(baselines.NameRPAR)
	for i := range hipo.Y {
		if hipo.Y[i] < rpar.Y[i]-1e-9 {
			t.Errorf("HIPO below RPAR at %d: %v vs %v", i, hipo.Y[i], rpar.Y[i])
		}
	}
}

func TestRunNoSweepShape(t *testing.T) {
	rc := fastRC()
	rc.Algorithms = []string{baselines.NameHIPO}
	fig := RunNoSweep(rc)
	hipo := fig.FindSeries(baselines.NameHIPO)
	if hipo == nil || len(hipo.Y) != 8 {
		t.Fatal("bad shape")
	}
	// Utility should broadly decrease with more devices (paper Fig 11b):
	// compare the first and last points.
	if hipo.Y[7] > hipo.Y[0]+1e-9 {
		t.Errorf("utility grew with 8× devices: %v -> %v", hipo.Y[0], hipo.Y[7])
	}
}

func TestRunPthSweepShape(t *testing.T) {
	rc := fastRC()
	rc.Algorithms = []string{baselines.NameHIPO}
	fig := RunPthSweep(rc)
	hipo := fig.FindSeries(baselines.NameHIPO)
	// Larger threshold can only lower utility (same power, higher bar).
	if hipo.Y[len(hipo.Y)-1] > hipo.Y[0]+1e-9 {
		t.Errorf("utility grew with Pth: %v", hipo.Y)
	}
}

func TestRunUtilityCDF(t *testing.T) {
	fig := RunUtilityCDF(fastRC())
	for _, s := range fig.Series {
		if len(s.X) != 40 {
			t.Fatalf("%s: CDF over %d devices, want 40", s.Label, len(s.X))
		}
		// CDF is nondecreasing and ends at 1.
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] < s.Y[i-1] {
				t.Fatalf("%s: CDF decreasing", s.Label)
			}
		}
		if math.Abs(s.Y[len(s.Y)-1]-1) > 1e-12 {
			t.Fatalf("%s: CDF ends at %v", s.Label, s.Y[len(s.Y)-1])
		}
	}
}

func TestRunInstance(t *testing.T) {
	res := RunInstance(fastRC())
	if res.Scenario.TotalChargers() != 24 { // 4× initial (1+2+3)
		t.Errorf("instance chargers = %d, want 24", res.Scenario.TotalChargers())
	}
	hipo := res.Utilities[baselines.NameHIPO]
	rpar := res.Utilities[baselines.NameRPAR]
	if hipo <= rpar {
		t.Errorf("HIPO %v should beat RPAR %v on the instance", hipo, rpar)
	}
	for name, placed := range res.Placements {
		for _, s := range placed {
			if !res.Scenario.FeasiblePosition(s.Pos) {
				t.Errorf("%s placed at infeasible %v", name, s.Pos)
			}
		}
	}
}

func TestSummary(t *testing.T) {
	figs := []Figure{{
		Series: []Series{
			{Label: baselines.NameHIPO, Y: []float64{0.8, 0.9}},
			{Label: baselines.NameRPAR, Y: []float64{0.4, 0.45}},
		},
	}}
	s := Summary(figs)
	if math.Abs(s[baselines.NameRPAR]-100) > 1e-9 {
		t.Errorf("improvement = %v, want 100", s[baselines.NameRPAR])
	}
}

func TestRunTestbed(t *testing.T) {
	res := RunTestbed(RunConfig{Runs: 1, Seed: 1})
	if err := res.Scenario.Validate(); err != nil {
		t.Fatalf("testbed scenario invalid: %v", err)
	}
	if len(res.Scenario.Devices) != 10 || len(res.Scenario.Obstacles) != 3 {
		t.Error("testbed layout wrong")
	}
	if res.Scenario.TotalChargers() != 6 {
		t.Error("testbed should have 6 chargers")
	}
	hipoU := res.Utilities[baselines.NameHIPO]
	if len(hipoU) != 10 {
		t.Fatal("missing per-device utilities")
	}
	// Paper: HIPO charges every device with nonzero utility.
	for j, u := range hipoU {
		if u <= 0 {
			t.Errorf("HIPO leaves device %d uncharged", j+1)
		}
	}
	uf := TestbedUtilityFigure(res)
	pf := TestbedPowerCDFFigure(res)
	if len(uf.Series) != 3 || len(pf.Series) != 3 {
		t.Error("testbed figures missing series")
	}
}

func TestRunRedeploy(t *testing.T) {
	res, err := RunRedeploy(RunConfig{Runs: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.MinMaxPlan.Max > res.MinTotalPlan.Max+1e-9 {
		t.Errorf("min-max plan has larger max: %v vs %v",
			res.MinMaxPlan.Max, res.MinTotalPlan.Max)
	}
	if res.MinTotalPlan.Total > res.MinMaxPlan.Total+1e-9 {
		t.Errorf("min-total plan has larger total: %v vs %v",
			res.MinTotalPlan.Total, res.MinMaxPlan.Total)
	}
	if len(res.MinTotalPlan.Moves) != res.Old.TotalChargers() {
		t.Errorf("moves = %d, want %d", len(res.MinTotalPlan.Moves), res.Old.TotalChargers())
	}
}

func TestWriteCSVAndTable(t *testing.T) {
	fig := Figure{
		ID: "test", Title: "T", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Label: "A", X: []float64{1, 2}, Y: []float64{0.5, 0.6}},
			{Label: "B", X: []float64{1, 2}, Y: []float64{0.1, 0.2}},
		},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, fig); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "test,A,1,0.5") {
		t.Errorf("CSV missing row: %s", out)
	}
	buf.Reset()
	WriteTable(&buf, fig)
	if !strings.Contains(buf.String(), "A") || !strings.Contains(buf.String(), "0.6000") {
		t.Errorf("table output: %s", buf.String())
	}
	// Mismatched X falls back to per-series blocks.
	fig.Series[1].X = []float64{3}
	fig.Series[1].Y = []float64{0.9}
	buf.Reset()
	WriteTable(&buf, fig)
	if !strings.Contains(buf.String(), "B (x → y):") {
		t.Errorf("per-series table output: %s", buf.String())
	}
}

func TestStatsHelpers(t *testing.T) {
	if Mean(nil) != 0 || Mean([]float64{2, 4}) != 3 {
		t.Error("Mean broken")
	}
	xs, ys := CDF([]float64{3, 1, 2})
	if xs[0] != 1 || xs[2] != 3 || ys[2] != 1 {
		t.Error("CDF broken")
	}
	if got := ImprovementPercent([]float64{2}, []float64{1}); got != 100 {
		t.Errorf("improvement = %v", got)
	}
	if got := ImprovementPercent([]float64{2}, []float64{0}); got != 0 {
		t.Errorf("zero-base improvement = %v", got)
	}
}

func TestDistributedReduction(t *testing.T) {
	fig := Figure{Series: []Series{
		{Label: "Non-Dis", Y: []float64{10, 20}},
		{Label: "Dis-5", Y: []float64{2, 4}},
	}}
	red := DistributedReduction(fig)
	if math.Abs(red["Dis-5"]-80) > 1e-9 {
		t.Errorf("reduction = %v, want 80", red["Dis-5"])
	}
}

func TestRunEpsSweep(t *testing.T) {
	rc := RunConfig{Runs: 1, Seed: 2}
	fig := RunEpsSweep(rc)
	if len(fig.Series) != 2 {
		t.Fatal("eps sweep needs two series")
	}
	cands := fig.Series[1]
	// Finer eps ⇒ more distance levels ⇒ at least as many candidates.
	if cands.Y[0] < cands.Y[len(cands.Y)-1] {
		t.Errorf("candidate count not decreasing in eps: %v", cands.Y)
	}
	for _, u := range fig.Series[0].Y {
		if u <= 0 || u > 1 {
			t.Errorf("utility %v out of range", u)
		}
	}
}

func TestRunObstacleSweep(t *testing.T) {
	rc := RunConfig{Runs: 1, Seed: 3}
	fig := RunObstacleSweep(rc)
	s := fig.Series[0]
	if len(s.Y) != 6 {
		t.Fatal("wrong point count")
	}
	for _, u := range s.Y {
		if u <= 0 || u > 1 {
			t.Errorf("utility %v out of range", u)
		}
	}
}

func TestScenarioWithRandomObstacles(t *testing.T) {
	sc := scenarioWithRandomObstacles(9, 5)
	if err := sc.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if len(sc.Obstacles) != 5 {
		t.Errorf("obstacles = %d", len(sc.Obstacles))
	}
	if len(sc.Devices) != 40 {
		t.Errorf("devices = %d", len(sc.Devices))
	}
}

func TestRunComplexitySweep(t *testing.T) {
	rc := RunConfig{Runs: 1, Seed: 4}
	fig := RunComplexitySweep(rc)
	times := fig.Series[0]
	if times.Y[0] != 1 {
		t.Errorf("normalization broken: %v", times.Y[0])
	}
	// Solve time should grow with device count overall.
	if times.Y[len(times.Y)-1] <= times.Y[0] {
		t.Errorf("no growth in solve time: %v", times.Y)
	}
	exp := fig.Series[1].Y[0]
	// Growth between linear-ish and the theorem's quartic worst case.
	if exp < 0.3 || exp > 4.5 {
		t.Errorf("fitted exponent %v implausible", exp)
	}
}

func TestLogLogSlope(t *testing.T) {
	// y = x² exactly.
	xs := []float64{1, 2, 4, 8}
	ys := []float64{1, 4, 16, 64}
	if got := logLogSlope(xs, ys); math.Abs(got-2) > 1e-9 {
		t.Errorf("slope = %v, want 2", got)
	}
	if got := logLogSlope([]float64{1}, []float64{1}); got != 0 {
		t.Errorf("degenerate slope = %v", got)
	}
	if got := logLogSlope([]float64{0, -1}, []float64{1, 2}); got != 0 {
		t.Errorf("nonpositive xs slope = %v", got)
	}
}

func TestRemainingSweepRunners(t *testing.T) {
	if testing.Short() {
		t.Skip("slow sweep runners")
	}
	rc := RunConfig{Runs: 1, Seed: 7, Eps: 0.15, Algorithms: []string{baselines.NameHIPO}}
	for _, run := range []struct {
		name string
		fn   func(RunConfig) Figure
	}{
		{"alphaS", RunAlphaSSweep},
		{"alphaO", RunAlphaOSweep},
		{"dmin", RunDminSweep},
	} {
		fig := run.fn(rc)
		hipo := fig.FindSeries(baselines.NameHIPO)
		if hipo == nil || len(hipo.Y) != 8 {
			t.Fatalf("%s: bad shape", run.name)
		}
		for _, u := range hipo.Y {
			if u < 0 || u > 1 {
				t.Fatalf("%s: utility %v out of range", run.name, u)
			}
		}
	}
	// Angles help: 2× angle beats 0.6× angle.
	figS := RunAlphaSSweep(rc)
	hs := figS.FindSeries(baselines.NameHIPO)
	if hs.Y[len(hs.Y)-1] < hs.Y[0] {
		t.Errorf("wider charging angle lowered utility: %v", hs.Y)
	}
}

func TestRunPthLadderShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rc := RunConfig{Runs: 1, Seed: 7}
	fig := RunPthLadder(rc)
	if len(fig.Series) != 5 {
		t.Fatalf("ladders = %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Y) != 8 {
			t.Fatalf("%s: %d points", s.Label, len(s.Y))
		}
		// Broad trend: utility at 8× devices below 1× devices.
		if s.Y[7] > s.Y[0]+1e-9 {
			t.Errorf("%s: utility grew with devices", s.Label)
		}
	}
}

func TestRunDminDmaxGridShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rc := RunConfig{Runs: 1, Seed: 7}
	fig := RunDminDmaxGrid(rc)
	if len(fig.Series) != 10 {
		t.Fatalf("ratios = %d", len(fig.Series))
	}
	// At max dmax, utility decreases (weakly, modulo noise) from ratio 0 to
	// ratio 0.9 — compare the extremes with slack.
	lo := fig.Series[0].Y[len(fig.Series[0].Y)-1]
	hi := fig.Series[9].Y[len(fig.Series[9].Y)-1]
	if hi > lo+0.1 {
		t.Errorf("large dmin/dmax ratio should not beat small: %v vs %v", hi, lo)
	}
}

func TestRunDistributedTimingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rc := RunConfig{Runs: 1, Seed: 7}
	fig := RunDistributedTiming(rc)
	if len(fig.Series) != 1+len(MachineCounts) {
		t.Fatalf("series = %d", len(fig.Series))
	}
	nonDis := fig.FindSeries("Non-Dis")
	if nonDis.Y[0] != 1 {
		t.Errorf("normalization: %v", nonDis.Y[0])
	}
	dis5 := fig.FindSeries("Dis-5")
	for i := range nonDis.Y {
		if dis5.Y[i] > nonDis.Y[i]+1e-9 {
			t.Errorf("Dis-5 slower than serial at %d", i)
		}
	}
	red := DistributedReduction(fig)
	if red["Dis-5"] <= 0 || red["Dis-25"] < red["Dis-5"]-5 {
		t.Errorf("reductions implausible: %v", red)
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Std() != 0 || w.N() != 0 {
		t.Error("zero-value Welford should be empty")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Errorf("mean = %v, want 5", w.Mean())
	}
	// Sample std of that classic set: sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(w.Std()-want) > 1e-12 {
		t.Errorf("std = %v, want %v", w.Std(), want)
	}
	if w.N() != 8 {
		t.Errorf("n = %d", w.N())
	}
}

func TestSweepReportsStd(t *testing.T) {
	rc := RunConfig{Runs: 3, Seed: 5, Algorithms: []string{baselines.NameRPAR}}
	fig := RunNoSweep(rc)
	s := fig.Series[0]
	if len(s.Err) != len(s.Y) {
		t.Fatal("no Err column")
	}
	nonzero := false
	for _, e := range s.Err {
		if e < 0 {
			t.Fatal("negative std")
		}
		if e > 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Error("randomized algorithm should show run-to-run dispersion")
	}
}

func TestBuildScenarioWithTopologies(t *testing.T) {
	for _, topo := range []Topology{Uniform, Clustered, Corridor} {
		sc := BuildScenarioWith(Params{Seed: 5}, topo)
		if err := sc.Validate(); err != nil {
			t.Fatalf("topology %d invalid: %v", topo, err)
		}
		if len(sc.Devices) != 40 {
			t.Fatalf("topology %d devices = %d", topo, len(sc.Devices))
		}
	}
	// Corridor: all devices within the middle band.
	sc := BuildScenarioWith(Params{Seed: 5}, Corridor)
	midY := AreaSide / 2
	for _, d := range sc.Devices {
		if math.Abs(d.Pos.Y-midY) > AreaSide/8+1e-9 {
			t.Fatalf("corridor device at y=%v outside band", d.Pos.Y)
		}
	}
	// Clustered: mean pairwise distance well below uniform's.
	uni := BuildScenarioWith(Params{Seed: 5}, Uniform)
	clu := BuildScenarioWith(Params{Seed: 5}, Clustered)
	if meanPairDist(clu) >= meanPairDist(uni) {
		t.Errorf("clustered spread %v not below uniform %v",
			meanPairDist(clu), meanPairDist(uni))
	}
}

func meanPairDist(sc *model.Scenario) float64 {
	total, n := 0.0, 0
	for i := range sc.Devices {
		for j := i + 1; j < len(sc.Devices); j++ {
			total += sc.Devices[i].Pos.Dist(sc.Devices[j].Pos)
			n++
		}
	}
	return total / float64(n)
}

func TestSolverHandlesAllTopologies(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	for _, topo := range []Topology{Clustered, Corridor} {
		sc := BuildScenarioWith(Params{Seed: 11}, topo)
		sol, err := core.Solve(sc, core.Options{Eps: 0.15})
		if err != nil {
			t.Fatalf("topology %d: %v", topo, err)
		}
		if sol.Utility <= 0 {
			t.Errorf("topology %d: zero utility", topo)
		}
	}
}

func TestRunFairnessComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	fig := RunFairnessComparison(RunConfig{Runs: 1, Seed: 9})
	if len(fig.Series) != 5 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Y) != 3 {
			t.Fatalf("%s: %d metrics", s.Label, len(s.Y))
		}
		for i, v := range s.Y {
			if v < 0 || v > 1+1e-9 {
				t.Errorf("%s metric %d = %v", s.Label, i, v)
			}
		}
	}
	// The SA balancer is seeded with the greedy solution, so its min
	// utility must be at least the greedy's.
	var greedy, sa *Series
	for i := range fig.Series {
		switch fig.Series[i].Label {
		case "Greedy":
			greedy = &fig.Series[i]
		case "MaxMin-SA":
			sa = &fig.Series[i]
		}
	}
	if sa.Y[0] < greedy.Y[0]-1e-9 {
		t.Errorf("SA min utility %v below greedy %v", sa.Y[0], greedy.Y[0])
	}
}

func TestPerturbDevices(t *testing.T) {
	sc := BuildScenario(Params{Seed: 3})
	half := perturbDevices(sc, 0.5, 99)
	if len(half.Devices) != len(sc.Devices) {
		t.Fatal("device count changed")
	}
	moved := 0
	for i := range sc.Devices {
		if !sc.Devices[i].Pos.Eq(half.Devices[i].Pos) {
			moved++
		}
	}
	if moved != len(sc.Devices)/2 {
		t.Errorf("moved %d devices, want %d", moved, len(sc.Devices)/2)
	}
	if err := half.Validate(); err != nil {
		t.Fatalf("perturbed scenario invalid: %v", err)
	}
	// fraction 0 moves nothing; fraction 1 moves everything (statistically
	// all positions change).
	none := perturbDevices(sc, 0, 100)
	for i := range sc.Devices {
		if !sc.Devices[i].Pos.Eq(none.Devices[i].Pos) {
			t.Fatal("fraction 0 moved a device")
		}
	}
}

func TestRunRedeployOverheadSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	fig := RunRedeployOverheadSweep(RunConfig{Runs: 1, Seed: 13})
	if len(fig.Series) != 2 {
		t.Fatal("series count")
	}
	total := fig.Series[0]
	// More churn costs (weakly) more in total overhead — compare extremes
	// with slack for single-run noise.
	if total.Y[len(total.Y)-1] < total.Y[0]*0.8 {
		t.Errorf("full churn cheaper than 10%% churn: %v", total.Y)
	}
	for _, s := range fig.Series {
		for _, v := range s.Y {
			if v < 0 {
				t.Fatal("negative overhead")
			}
		}
	}
}
