// Package expt is the experiment harness that regenerates every table and
// figure of the paper's evaluation (Sections 6 and 7): the default
// parameters of Tables 2–4, seeded random topologies on the 40 m × 40 m
// two-obstacle plane of Figure 10(a), per-figure sweep runners, the field-
// testbed replica of Section 7, and CSV/console reporting.
//
//hipo:allow-wallclock the experiment harness measures solver runtime as an output
package expt

import (
	"math"
	"math/rand"

	"hipo/internal/geom"
	"hipo/internal/model"
)

// Default experiment constants from Section 6.
const (
	// DefaultEps is the approximation parameter ε.
	DefaultEps = 0.15
	// DefaultPth is the power threshold P_th for all devices.
	DefaultPth = 0.05
	// DefaultChargerMult: "the default setting for charger number is three
	// times of initial setting".
	DefaultChargerMult = 3
	// DefaultDeviceMult: "that for device number is four times of initial
	// setting".
	DefaultDeviceMult = 4
	// AreaSide is the side of the square deployment area (meters).
	AreaSide = 40.0
)

// initialChargerCounts are the paper's initial per-type charger counts
// (1, 2, 3); initialDeviceCounts the per-type device counts (4, 3, 2, 1).
var (
	initialChargerCounts = []int{1, 2, 3}
	initialDeviceCounts  = []int{4, 3, 2, 1}
)

// Params parameterizes scenario construction for the sweeps of Figure 11
// and later. Zero values mean "paper default".
type Params struct {
	// ChargerMult scales the initial charger counts (default 3).
	ChargerMult int
	// DeviceMult scales the initial device counts (default 4).
	DeviceMult int
	// EqualDeviceCounts uses 2 devices of each type times DeviceMult
	// instead of the 4/3/2/1 ladder (Figure 13's setting).
	EqualDeviceCounts bool
	// AlphaSScale scales every charger's charging angle (Fig 11c).
	AlphaSScale float64
	// AlphaOScale scales every device's receiving angle (Fig 11d).
	AlphaOScale float64
	// Pth overrides the power threshold for all device types (Fig 11e).
	Pth float64
	// PthOffsets[t] adds a per-device-type offset to Pth (Fig 13).
	PthOffsets []float64
	// DminScale scales every charger's d_min (Fig 11f).
	DminScale float64
	// DmaxScale scales every charger's d_max (Fig 14).
	DmaxScale float64
	// DminOverDmax, when positive, sets d_min = ratio · d_max for all
	// charger types (Fig 14's second axis), overriding DminScale.
	DminOverDmax float64
	// Seed drives device topology generation.
	Seed int64
}

func (p Params) withDefaults() Params {
	if p.ChargerMult == 0 {
		p.ChargerMult = DefaultChargerMult
	}
	if p.DeviceMult == 0 {
		p.DeviceMult = DefaultDeviceMult
	}
	if p.AlphaSScale == 0 {
		p.AlphaSScale = 1
	}
	if p.AlphaOScale == 0 {
		p.AlphaOScale = 1
	}
	if p.Pth == 0 {
		p.Pth = DefaultPth
	}
	if p.DminScale == 0 {
		p.DminScale = 1
	}
	if p.DmaxScale == 0 {
		p.DmaxScale = 1
	}
	return p
}

// BaseScenario returns the default simulation scenario skeleton of Section
// 6 — Tables 2–4 plus the two obstacles of Figure 10(a) — without devices.
func BaseScenario() *model.Scenario {
	return &model.Scenario{
		Region: model.Region{Min: geom.V(0, 0), Max: geom.V(AreaSide, AreaSide)},
		ChargerTypes: []model.ChargerType{ // Table 2
			{Name: "charger-1", Alpha: math.Pi / 6, DMin: 5, DMax: 10},
			{Name: "charger-2", Alpha: math.Pi / 3, DMin: 3, DMax: 8},
			{Name: "charger-3", Alpha: math.Pi / 2, DMin: 2, DMax: 6},
		},
		DeviceTypes: []model.DeviceType{ // Table 3
			{Name: "device-1", Alpha: math.Pi / 2, PTh: DefaultPth},
			{Name: "device-2", Alpha: 2 * math.Pi / 3, PTh: DefaultPth},
			{Name: "device-3", Alpha: 3 * math.Pi / 4, PTh: DefaultPth},
			{Name: "device-4", Alpha: math.Pi, PTh: DefaultPth},
		},
		Power: [][]model.PowerParams{ // Table 4
			{{A: 100, B: 40}, {A: 130, B: 52}, {A: 160, B: 64}, {A: 190, B: 76}},
			{{A: 110, B: 44}, {A: 140, B: 56}, {A: 170, B: 68}, {A: 200, B: 80}},
			{{A: 120, B: 48}, {A: 150, B: 60}, {A: 180, B: 72}, {A: 210, B: 84}},
		},
		Obstacles: []model.Obstacle{ // the two obstacles of Figure 10(a)
			{Shape: geom.Poly(geom.V(8, 22), geom.V(14, 20), geom.V(16, 26), geom.V(10, 29))},
			{Shape: geom.Rect(24, 10, 31, 15)},
		},
	}
}

// BuildScenario constructs a complete scenario from Params: the Tables 2–4
// defaults with the requested scalings applied, plus a seeded random device
// topology ("if the randomly generated position happens to be inside an
// obstacle... we repeat the process until a feasible position is obtained").
func BuildScenario(p Params) *model.Scenario {
	p = p.withDefaults()
	sc := BaseScenario()
	for q := range sc.ChargerTypes {
		ct := &sc.ChargerTypes[q]
		ct.Count = initialChargerCounts[q] * p.ChargerMult
		ct.Alpha = math.Min(ct.Alpha*p.AlphaSScale, 2*math.Pi)
		ct.DMax *= p.DmaxScale
		if p.DminOverDmax > 0 {
			ct.DMin = p.DminOverDmax * ct.DMax
		} else {
			ct.DMin *= p.DminScale
		}
		// Keep the ring non-degenerate.
		if ct.DMin >= ct.DMax {
			ct.DMin = ct.DMax * 0.99
		}
	}
	for t := range sc.DeviceTypes {
		dt := &sc.DeviceTypes[t]
		dt.Alpha = math.Min(dt.Alpha*p.AlphaOScale, 2*math.Pi)
		dt.PTh = p.Pth
		if t < len(p.PthOffsets) {
			dt.PTh += p.PthOffsets[t]
		}
		if dt.PTh <= 0 {
			dt.PTh = 1e-6
		}
	}
	rng := rand.New(rand.NewSource(p.Seed))
	counts := make([]int, len(sc.DeviceTypes))
	for t := range counts {
		if p.EqualDeviceCounts {
			counts[t] = 2 * p.DeviceMult
		} else {
			counts[t] = initialDeviceCounts[t] * p.DeviceMult
		}
	}
	PlaceRandomDevices(sc, rng, counts)
	return sc
}

// PlaceRandomDevices appends counts[t] devices of each type t at uniform
// random feasible positions with uniform random orientations.
func PlaceRandomDevices(sc *model.Scenario, rng *rand.Rand, counts []int) {
	for t, n := range counts {
		for i := 0; i < n; i++ {
			for {
				p := geom.V(
					sc.Region.Min.X+rng.Float64()*sc.Region.Width(),
					sc.Region.Min.Y+rng.Float64()*sc.Region.Height(),
				)
				if sc.FeasiblePosition(p) {
					sc.Devices = append(sc.Devices, model.Device{
						Pos:    p,
						Orient: rng.Float64() * 2 * math.Pi,
						Type:   t,
					})
					break
				}
			}
		}
	}
}
