package expt

import (
	"math"
	"math/rand"

	"hipo/internal/baselines"
	"hipo/internal/core"
	"hipo/internal/model"
	"hipo/internal/power"
)

// RunConfig controls a figure regeneration run.
type RunConfig struct {
	// Runs is the number of random topologies averaged per data point (the
	// paper uses 100).
	Runs int
	// Seed is the base topology seed; run r uses Seed + r.
	Seed int64
	// Eps is the approximation parameter ε (default 0.15).
	Eps float64
	// Algorithms lists the algorithms to evaluate; empty means HIPO plus
	// all eight baselines.
	Algorithms []string
	// Workers bounds solver parallelism (0 = GOMAXPROCS).
	Workers int
}

func (rc RunConfig) withDefaults() RunConfig {
	if rc.Runs == 0 {
		rc.Runs = 10
	}
	if rc.Eps == 0 {
		rc.Eps = DefaultEps
	}
	if len(rc.Algorithms) == 0 {
		rc.Algorithms = append([]string{baselines.NameHIPO}, baselines.All()...)
	}
	return rc
}

func (rc RunConfig) coreOptions() core.Options {
	return core.Options{Eps: rc.Eps, Workers: rc.Workers}
}

func (rc RunConfig) eps1() float64 { return power.Eps1ForEps(rc.Eps) }

// runAlgorithm executes one algorithm on a scenario and returns its exact
// total charging utility. HIPO is deterministic; baselines use rng.
func (rc RunConfig) runAlgorithm(name string, sc *model.Scenario, rng *rand.Rand) float64 {
	if name == baselines.NameHIPO {
		sol, err := core.Solve(sc, rc.coreOptions())
		if err != nil {
			return 0
		}
		return sol.Utility
	}
	return power.TotalUtility(sc, baselines.Run(name, sc, rng, rc.eps1()))
}

// placementOf returns the placement an algorithm produces (used by the
// instance and CDF figures).
func (rc RunConfig) placementOf(name string, sc *model.Scenario, rng *rand.Rand) []model.Strategy {
	if name == baselines.NameHIPO {
		sol, err := core.Solve(sc, rc.coreOptions())
		if err != nil {
			return nil
		}
		return sol.Placed
	}
	return baselines.Run(name, sc, rng, rc.eps1())
}

// sweep evaluates all configured algorithms across xs, building each
// scenario via build(x, seed) and averaging utilities over rc.Runs
// topologies.
func (rc RunConfig) sweep(xs []float64, build func(x float64, seed int64) *model.Scenario) []Series {
	rc = rc.withDefaults()
	series := make([]Series, len(rc.Algorithms))
	for a, name := range rc.Algorithms {
		series[a] = Series{Label: name, X: xs,
			Y: make([]float64, len(xs)), Err: make([]float64, len(xs))}
	}
	for xi, x := range xs {
		acc := make([]Welford, len(rc.Algorithms))
		for r := 0; r < rc.Runs; r++ {
			seed := rc.Seed + int64(r)
			sc := build(x, seed)
			for a, name := range rc.Algorithms {
				rng := rand.New(rand.NewSource(seed*1000 + int64(a)))
				acc[a].Add(rc.runAlgorithm(name, sc, rng))
			}
		}
		for a := range acc {
			series[a].Y[xi] = acc[a].Mean()
			series[a].Err[xi] = acc[a].Std()
		}
	}
	return series
}

// RunNsSweep regenerates Figure 11(a): charging utility versus the number
// of chargers (1×–8× the initial setting). HIPO candidates are extracted
// once per topology and reused across budgets, mirroring that the candidate
// set of Section 4.2 is independent of N_s.
func RunNsSweep(rc RunConfig) Figure {
	rc = rc.withDefaults()
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	series := make([]Series, len(rc.Algorithms))
	for a, name := range rc.Algorithms {
		series[a] = Series{Label: name, X: xs, Y: make([]float64, len(xs))}
	}
	for r := 0; r < rc.Runs; r++ {
		seed := rc.Seed + int64(r)
		base := BuildScenario(Params{Seed: seed})
		cands := core.ExtractCandidates(base, rc.coreOptions())
		for xi, x := range xs {
			sc := base.Clone()
			for q := range sc.ChargerTypes {
				sc.ChargerTypes[q].Count = initialChargerCounts[q] * int(x)
			}
			for a, name := range rc.Algorithms {
				if name == baselines.NameHIPO {
					sol, err := core.SelectFromCandidates(sc, cands, rc.coreOptions())
					if err == nil {
						series[a].Y[xi] += sol.Utility / float64(rc.Runs)
					}
					continue
				}
				rng := rand.New(rand.NewSource(seed*1000 + int64(a)))
				u := power.TotalUtility(sc, baselines.Run(name, sc, rng, rc.eps1()))
				series[a].Y[xi] += u / float64(rc.Runs)
			}
		}
	}
	return Figure{
		ID: "fig11a", Title: "Impact of number of chargers Ns",
		XLabel: "Number of Chargers (Times)", YLabel: "Charging Utility",
		Series: series,
	}
}

// RunNoSweep regenerates Figure 11(b): utility versus the number of devices
// (1×–8×).
func RunNoSweep(rc RunConfig) Figure {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	series := rc.sweep(xs, func(x float64, seed int64) *model.Scenario {
		return BuildScenario(Params{DeviceMult: int(x), Seed: seed})
	})
	return Figure{
		ID: "fig11b", Title: "Impact of number of devices No",
		XLabel: "Number of Devices (Times)", YLabel: "Charging Utility",
		Series: series,
	}
}

// RunAlphaSSweep regenerates Figure 11(c): utility versus charging angle
// scale (0.6×–2×).
func RunAlphaSSweep(rc RunConfig) Figure {
	xs := []float64{0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0}
	series := rc.sweep(xs, func(x float64, seed int64) *model.Scenario {
		return BuildScenario(Params{AlphaSScale: x, Seed: seed})
	})
	return Figure{
		ID: "fig11c", Title: "Impact of charging angle",
		XLabel: "Charging Angle (Times)", YLabel: "Charging Utility",
		Series: series,
	}
}

// RunAlphaOSweep regenerates Figure 11(d): utility versus receiving angle
// scale (0.6×–2×).
func RunAlphaOSweep(rc RunConfig) Figure {
	xs := []float64{0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0}
	series := rc.sweep(xs, func(x float64, seed int64) *model.Scenario {
		return BuildScenario(Params{AlphaOScale: x, Seed: seed})
	})
	return Figure{
		ID: "fig11d", Title: "Impact of receiving angle",
		XLabel: "Receiving Angle (Times)", YLabel: "Charging Utility",
		Series: series,
	}
}

// RunPthSweep regenerates Figure 11(e): utility versus power threshold
// (0.02–0.09).
func RunPthSweep(rc RunConfig) Figure {
	xs := []float64{0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.08, 0.09}
	series := rc.sweep(xs, func(x float64, seed int64) *model.Scenario {
		return BuildScenario(Params{Pth: x, Seed: seed})
	})
	return Figure{
		ID: "fig11e", Title: "Impact of power threshold",
		XLabel: "Power Threshold", YLabel: "Charging Utility",
		Series: series,
	}
}

// RunDminSweep regenerates Figure 11(f): utility versus nearest charging
// distance scale (0–1.4×).
func RunDminSweep(rc RunConfig) Figure {
	xs := []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4}
	series := rc.sweep(xs, func(x float64, seed int64) *model.Scenario {
		scale := x
		if scale == 0 {
			scale = 1e-9 // a zero scale would mean "default" in Params
		}
		return BuildScenario(Params{DminScale: scale, Seed: seed})
	})
	return Figure{
		ID: "fig11f", Title: "Impact of nearest distance dmin",
		XLabel: "dmin (Times)", YLabel: "Charging Utility",
		Series: series,
	}
}

// RunPthLadder regenerates Figure 13: HIPO utility versus device multiple
// under per-type power-threshold ladders (offsets between adjacent device
// types of −0.01 … +0.01, holding type 2 at 0.05), with equalized device
// counts (2 per type).
func RunPthLadder(rc RunConfig) Figure {
	rc = rc.withDefaults()
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	deltas := []float64{-0.01, -0.005, 0, 0.005, 0.01}
	labels := []string{"-0.01", "-0.005", "0", "+0.005", "+0.01"}
	series := make([]Series, len(deltas))
	for di, delta := range deltas {
		series[di] = Series{Label: labels[di], X: xs, Y: make([]float64, len(xs))}
		// Type 2 (index 1) anchored at 0.05: offsets per type index t are
		// (t−1)·delta.
		offsets := make([]float64, 4)
		for t := range offsets {
			offsets[t] = float64(t-1) * delta
		}
		for xi, x := range xs {
			sum := 0.0
			for r := 0; r < rc.Runs; r++ {
				sc := BuildScenario(Params{
					DeviceMult:        int(x),
					EqualDeviceCounts: true,
					PthOffsets:        offsets,
					Seed:              rc.Seed + int64(r),
				})
				sol, err := core.Solve(sc, rc.coreOptions())
				if err == nil {
					sum += sol.Utility
				}
			}
			series[di].Y[xi] = sum / float64(rc.Runs)
		}
	}
	return Figure{
		ID: "fig13", Title: "Impact of different power thresholds",
		XLabel: "Number of Devices (Times)", YLabel: "Charging Utility",
		Series: series,
	}
}

// RunDminDmaxGrid regenerates Figure 14: HIPO utility over the grid of
// d_max scale (0.6–2×) × d_min/d_max ratio (0–0.9), with chargers at 2×
// the initial setting. One series per ratio, X = d_max scale.
func RunDminDmaxGrid(rc RunConfig) Figure {
	rc = rc.withDefaults()
	dmaxScales := []float64{0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0}
	ratios := []float64{1e-9, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	series := make([]Series, len(ratios))
	for ri, ratio := range ratios {
		series[ri] = Series{Label: ratioLabel(ratio), X: dmaxScales, Y: make([]float64, len(dmaxScales))}
		for xi, dm := range dmaxScales {
			sum := 0.0
			for r := 0; r < rc.Runs; r++ {
				sc := BuildScenario(Params{
					ChargerMult:  2,
					DmaxScale:    dm,
					DminOverDmax: ratio,
					Seed:         rc.Seed + int64(r),
				})
				sol, err := core.Solve(sc, rc.coreOptions())
				if err == nil {
					sum += sol.Utility
				}
			}
			series[ri].Y[xi] = sum / float64(rc.Runs)
		}
	}
	return Figure{
		ID: "fig14", Title: "Impact of dmin and dmax",
		XLabel: "dmax (Times)", YLabel: "Charging Utility",
		Series: series,
	}
}

func ratioLabel(r float64) string {
	if r < 1e-6 {
		return "dmin/dmax=0"
	}
	return "dmin/dmax=" + trimFloat(r)
}

func trimFloat(x float64) string {
	s := []byte{}
	v := int(math.Round(x * 10))
	s = append(s, '0', '.', byte('0'+v%10))
	return string(s)
}

// RunUtilityCDF regenerates Figure 15: the CDF of per-device charging
// utilities of all algorithms on one default 40-device topology.
func RunUtilityCDF(rc RunConfig) Figure {
	rc = rc.withDefaults()
	sc := BuildScenario(Params{Seed: rc.Seed})
	var series []Series
	for a, name := range rc.Algorithms {
		rng := rand.New(rand.NewSource(rc.Seed*1000 + int64(a)))
		placed := rc.placementOf(name, sc, rng)
		xs, ys := CDF(power.DeviceUtilities(sc, placed))
		series = append(series, Series{Label: name, X: xs, Y: ys})
	}
	return Figure{
		ID: "fig15", Title: "Charging utility CDF of different devices",
		XLabel: "Charging Utility", YLabel: "CDF",
		Series: series,
	}
}

// InstanceResult is the outcome of the Figure 10 single-instance study:
// utilities and placements for every algorithm on one fixed topology with
// chargers at 4× the initial setting.
type InstanceResult struct {
	Scenario   *model.Scenario
	Utilities  map[string]float64
	Placements map[string][]model.Strategy
}

// RunInstance regenerates Figure 10.
func RunInstance(rc RunConfig) InstanceResult {
	rc = rc.withDefaults()
	sc := BuildScenario(Params{ChargerMult: 4, Seed: rc.Seed})
	res := InstanceResult{
		Scenario:   sc,
		Utilities:  make(map[string]float64),
		Placements: make(map[string][]model.Strategy),
	}
	for a, name := range rc.Algorithms {
		rng := rand.New(rand.NewSource(rc.Seed*1000 + int64(a)))
		placed := rc.placementOf(name, sc, rng)
		res.Placements[name] = placed
		res.Utilities[name] = power.TotalUtility(sc, placed)
	}
	return res
}

// Summary aggregates the average percentage improvement of HIPO over each
// baseline across a set of figures (the paper's "outperforms by at least
// 33.49% on average" headline).
func Summary(figs []Figure) map[string]float64 {
	agg := make(map[string][]float64)
	for _, fig := range figs {
		hipo := fig.FindSeries(baselines.NameHIPO)
		if hipo == nil {
			continue
		}
		for _, s := range fig.Series {
			if s.Label == baselines.NameHIPO {
				continue
			}
			agg[s.Label] = append(agg[s.Label], ImprovementPercent(hipo.Y, s.Y))
		}
	}
	out := make(map[string]float64, len(agg))
	for name, vals := range agg {
		out[name] = Mean(vals)
	}
	return out
}
