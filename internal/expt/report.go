package expt

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WriteCSV writes a figure as CSV: one row per (series, x, y) triple.
func WriteCSV(w io.Writer, fig Figure) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"figure", "series", "x", "y", "std"}); err != nil {
		return err
	}
	for _, s := range fig.Series {
		for i := range s.X {
			std := ""
			if i < len(s.Err) {
				std = strconv.FormatFloat(s.Err[i], 'g', 10, 64)
			}
			rec := []string{
				fig.ID, s.Label,
				strconv.FormatFloat(s.X[i], 'g', 10, 64),
				strconv.FormatFloat(s.Y[i], 'g', 10, 64),
				std,
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable prints a figure as an aligned console table: the X column
// followed by one column per series. Series must share X values (true for
// all sweep figures; CDF figures are printed series-by-series).
func WriteTable(w io.Writer, fig Figure) {
	fmt.Fprintf(w, "# %s — %s\n", fig.ID, fig.Title)
	if len(fig.Series) == 0 {
		fmt.Fprintln(w, "(empty)")
		return
	}
	if sharedX(fig.Series) {
		// Column width adapts to the longest series label.
		width := 16
		for _, s := range fig.Series {
			if len(s.Label)+2 > width {
				width = len(s.Label) + 2
			}
		}
		fmt.Fprintf(w, "%-28s", fig.XLabel)
		for _, s := range fig.Series {
			fmt.Fprintf(w, "%*s", width, s.Label)
		}
		fmt.Fprintln(w)
		for i := range fig.Series[0].X {
			fmt.Fprintf(w, "%-28.4g", fig.Series[0].X[i])
			for _, s := range fig.Series {
				fmt.Fprintf(w, "%*.4f", width, s.Y[i])
			}
			fmt.Fprintln(w)
		}
		return
	}
	for _, s := range fig.Series {
		fmt.Fprintf(w, "%s (%s → %s):\n", s.Label, fig.XLabel, fig.YLabel)
		for i := range s.X {
			fmt.Fprintf(w, "  %10.4f %10.4f\n", s.X[i], s.Y[i])
		}
	}
}

func sharedX(series []Series) bool {
	for _, s := range series[1:] {
		if len(s.X) != len(series[0].X) {
			return false
		}
		for i := range s.X {
			if s.X[i] != series[0].X[i] {
				return false
			}
		}
	}
	return true
}

// WriteSummary prints the HIPO-vs-baseline improvement summary sorted by
// baseline name.
func WriteSummary(w io.Writer, summary map[string]float64) {
	names := make([]string, 0, len(summary))
	for n := range summary {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintln(w, "# Average improvement of HIPO over baselines")
	for _, n := range names {
		fmt.Fprintf(w, "%-18s %+8.2f%%\n", n, summary[n])
	}
}
