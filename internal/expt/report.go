package expt

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WriteCSV writes a figure as CSV: one row per (series, x, y) triple.
func WriteCSV(w io.Writer, fig Figure) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"figure", "series", "x", "y", "std"}); err != nil {
		return err
	}
	for _, s := range fig.Series {
		for i := range s.X {
			std := ""
			if i < len(s.Err) {
				std = strconv.FormatFloat(s.Err[i], 'g', 10, 64)
			}
			rec := []string{
				fig.ID, s.Label,
				strconv.FormatFloat(s.X[i], 'g', 10, 64),
				strconv.FormatFloat(s.Y[i], 'g', 10, 64),
				std,
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// stickyWriter wraps an io.Writer with first-error capture so multi-line
// report writers can print unconditionally and surface one error at the
// end instead of silently dropping write failures.
type stickyWriter struct {
	w   io.Writer
	err error
}

func (sw *stickyWriter) printf(format string, args ...any) {
	if sw.err == nil {
		_, sw.err = fmt.Fprintf(sw.w, format, args...)
	}
}

// WriteTable prints a figure as an aligned console table: the X column
// followed by one column per series. Series must share X values (true for
// all sweep figures; CDF figures are printed series-by-series). The first
// write error, if any, is returned.
func WriteTable(w io.Writer, fig Figure) error {
	sw := &stickyWriter{w: w}
	sw.printf("# %s — %s\n", fig.ID, fig.Title)
	if len(fig.Series) == 0 {
		sw.printf("(empty)\n")
		return sw.err
	}
	if sharedX(fig.Series) {
		// Column width adapts to the longest series label.
		width := 16
		for _, s := range fig.Series {
			if len(s.Label)+2 > width {
				width = len(s.Label) + 2
			}
		}
		sw.printf("%-28s", fig.XLabel)
		for _, s := range fig.Series {
			sw.printf("%*s", width, s.Label)
		}
		sw.printf("\n")
		for i := range fig.Series[0].X {
			sw.printf("%-28.4g", fig.Series[0].X[i])
			for _, s := range fig.Series {
				sw.printf("%*.4f", width, s.Y[i])
			}
			sw.printf("\n")
		}
		return sw.err
	}
	for _, s := range fig.Series {
		sw.printf("%s (%s → %s):\n", s.Label, fig.XLabel, fig.YLabel)
		for i := range s.X {
			sw.printf("  %10.4f %10.4f\n", s.X[i], s.Y[i])
		}
	}
	return sw.err
}

func sharedX(series []Series) bool {
	for _, s := range series[1:] {
		if len(s.X) != len(series[0].X) {
			return false
		}
		for i := range s.X {
			if s.X[i] != series[0].X[i] {
				return false
			}
		}
	}
	return true
}

// WriteSummary prints the HIPO-vs-baseline improvement summary sorted by
// baseline name. The first write error, if any, is returned.
func WriteSummary(w io.Writer, summary map[string]float64) error {
	names := make([]string, 0, len(summary))
	for n := range summary {
		names = append(names, n)
	}
	sort.Strings(names)
	sw := &stickyWriter{w: w}
	sw.printf("# Average improvement of HIPO over baselines\n")
	for _, n := range names {
		sw.printf("%-18s %+8.2f%%\n", n, summary[n])
	}
	return sw.err
}
