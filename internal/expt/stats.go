package expt

import (
	"math"
	"sort"
)

// Series is one labeled curve of a figure. Err, when non-nil, holds the
// per-point sample standard deviation across the averaged runs.
type Series struct {
	Label string
	X     []float64
	Y     []float64
	Err   []float64
}

// Figure is a regenerated table or figure: a set of series with axis
// metadata, ready for CSV export or console printing.
type Figure struct {
	ID     string // e.g. "fig11a"
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Welford accumulates a running mean and variance (Welford's algorithm),
// numerically stable for the long experiment averages.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one sample into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Mean returns the running mean (0 before any sample).
func (w *Welford) Mean() float64 { return w.mean }

// Std returns the sample standard deviation (0 with fewer than 2 samples).
func (w *Welford) Std() float64 {
	if w.n < 2 {
		return 0
	}
	return math.Sqrt(w.m2 / float64(w.n-1))
}

// N returns the number of samples folded in.
func (w *Welford) N() int { return w.n }

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// CDF returns the empirical CDF of xs evaluated at each sorted sample:
// (sorted values, cumulative fractions).
func CDF(xs []float64) ([]float64, []float64) {
	if len(xs) == 0 {
		return nil, nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	fr := make([]float64, len(sorted))
	for i := range sorted {
		fr[i] = float64(i+1) / float64(len(sorted))
	}
	return sorted, fr
}

// ImprovementPercent returns the mean percentage by which curve a exceeds
// curve b, 100·mean((a_i − b_i)/b_i), skipping points where b_i ≤ 0.
func ImprovementPercent(a, b []float64) float64 {
	var vals []float64
	for i := range a {
		if i < len(b) && b[i] > 0 {
			vals = append(vals, 100*(a[i]-b[i])/b[i])
		}
	}
	return Mean(vals)
}

// FindSeries returns the series with the given label, or nil.
func (f *Figure) FindSeries(label string) *Series {
	for i := range f.Series {
		if f.Series[i].Label == label {
			return &f.Series[i]
		}
	}
	return nil
}
