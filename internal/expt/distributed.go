package expt

import (
	"fmt"
	"time"

	"hipo/internal/pdcs"
	"hipo/internal/power"
)

// MachineCounts are the parallel-machine settings of Figure 12.
var MachineCounts = []int{5, 10, 15, 20, 25}

// RunDistributedTiming regenerates Figure 12: the (normalized) time
// consumption of the parallel-processing part of PDCS extraction,
// non-distributed versus LPT-distributed onto 5–25 machines, as the number
// of devices grows 1×–8×. All values are divided by the non-distributed
// time at 1× devices, exactly as the paper normalizes, so the curves are
// platform-independent.
func RunDistributedTiming(rc RunConfig) Figure {
	rc = rc.withDefaults()
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	labels := append([]string{"Non-Dis"}, machineLabels()...)
	series := make([]Series, len(labels))
	for i, l := range labels {
		series[i] = Series{Label: l, X: xs, Y: make([]float64, len(xs))}
	}
	cfg := pdcs.Config{Eps1: power.Eps1ForEps(rc.Eps), Clock: time.Now}

	var norm float64 // non-distributed time at 1× devices, first run
	for xi, x := range xs {
		serialSum := 0.0
		makespanSums := make([]float64, len(MachineCounts))
		for r := 0; r < rc.Runs; r++ {
			sc := BuildScenario(Params{DeviceMult: int(x), Seed: rc.Seed + int64(r)})
			_, stats := pdcs.ExtractDistributed(sc, cfg, rc.Workers, MachineCounts)
			serialSum += stats.SerialSeconds
			for mi, m := range MachineCounts {
				makespanSums[mi] += stats.MakespanSeconds[m]
			}
		}
		if xi == 0 {
			norm = serialSum / float64(rc.Runs)
			if norm <= 0 {
				norm = 1e-9
			}
		}
		series[0].Y[xi] = serialSum / float64(rc.Runs) / norm
		for mi := range MachineCounts {
			series[mi+1].Y[xi] = makespanSums[mi] / float64(rc.Runs) / norm
		}
	}
	return Figure{
		ID: "fig12", Title: "Time consumption: distributed vs non-distributed",
		XLabel: "Number of Devices (Times)", YLabel: "Time Consumption (Times)",
		Series: series,
	}
}

func machineLabels() []string {
	out := make([]string, len(MachineCounts))
	for i, m := range MachineCounts {
		out[i] = fmt.Sprintf("Dis-%d", m)
	}
	return out
}

// DistributedReduction summarizes Figure 12 the way the paper reports it:
// the average percentage reduction of each distributed setting relative to
// the non-distributed time, across device multiples.
func DistributedReduction(fig Figure) map[string]float64 {
	nonDis := fig.FindSeries("Non-Dis")
	out := make(map[string]float64)
	if nonDis == nil {
		return out
	}
	for _, s := range fig.Series {
		if s.Label == "Non-Dis" {
			continue
		}
		var vals []float64
		for i := range s.Y {
			if nonDis.Y[i] > 0 {
				vals = append(vals, 100*(nonDis.Y[i]-s.Y[i])/nonDis.Y[i])
			}
		}
		out[s.Label] = Mean(vals)
	}
	return out
}
