package expt

import (
	"hipo/internal/core"
	"hipo/internal/model"
	"hipo/internal/redeploy"
)

// RedeployResult is the Figure 27/28 experiment outcome: HIPO solutions for
// two device topologies and the switching plans between them under both
// objectives of Section 8.1.
type RedeployResult struct {
	Old, New     *model.Scenario
	OldPlacement []model.Strategy
	NewPlacement []model.Strategy
	MinTotalPlan *redeploy.Plan
	MinMaxPlan   *redeploy.Plan
}

// RunRedeploy regenerates the Figure 27 study: solve HIPO for an original
// topology and for a perturbed topology, then compute the min-total and
// min-max redeployment plans per charger type via the bipartite matchings
// of Figure 28.
func RunRedeploy(rc RunConfig) (*RedeployResult, error) {
	rc = rc.withDefaults()
	old := BuildScenario(Params{Seed: rc.Seed})
	new_ := BuildScenario(Params{Seed: rc.Seed + 10_000})
	oldSol, err := core.Solve(old, rc.coreOptions())
	if err != nil {
		return nil, err
	}
	newSol, err := core.Solve(new_, rc.coreOptions())
	if err != nil {
		return nil, err
	}
	// Pad both placements so every type has its full budget (greedy may
	// place fewer when no candidate adds value; pad with repeats of the
	// last placement of that type or depot-origin strategies).
	oldP := padPlacement(old, oldSol.Placed)
	newP := padPlacement(new_, newSol.Placed)

	cm := redeploy.DefaultCostModel()
	nTypes := len(old.ChargerTypes)
	mt, err := redeploy.MinTotal(oldP, newP, nTypes, cm)
	if err != nil {
		return nil, err
	}
	mm, err := redeploy.MinMax(oldP, newP, nTypes, cm)
	if err != nil {
		return nil, err
	}
	return &RedeployResult{
		Old: old, New: new_,
		OldPlacement: oldP, NewPlacement: newP,
		MinTotalPlan: mt, MinMaxPlan: mm,
	}, nil
}

// padPlacement ensures the placement has exactly Count strategies per type
// so old/new matchings are square: missing slots are filled by duplicating
// the type's last strategy (an idle charger parked at the same spot), or a
// region-corner strategy when the type placed nothing.
func padPlacement(sc *model.Scenario, placed []model.Strategy) []model.Strategy {
	out := append([]model.Strategy(nil), placed...)
	for q, ct := range sc.ChargerTypes {
		var last *model.Strategy
		n := 0
		for i := range out {
			if out[i].Type == q {
				n++
				last = &out[i]
			}
		}
		for ; n < ct.Count; n++ {
			s := model.Strategy{Pos: sc.Region.Min, Orient: 0, Type: q}
			if last != nil {
				s = *last
			}
			out = append(out, s)
		}
	}
	return out
}
