package expt

import (
	"hipo/internal/core"
	"hipo/internal/model"
)

// RunEpsSweep is an ablation not in the paper's figures but implied by
// Theorem 4.2: utility and candidate count versus the approximation
// parameter ε. Finer ε buys a better guarantee (1/2 − ε) at the cost of
// more distance levels and candidates; this sweep shows the measured
// trade-off on the default scenario.
func RunEpsSweep(rc RunConfig) Figure {
	rc = rc.withDefaults()
	epss := []float64{0.05, 0.10, 0.15, 0.20, 0.30, 0.40, 0.45}
	utility := Series{Label: "HIPO utility", X: epss, Y: make([]float64, len(epss))}
	candidates := Series{Label: "candidates (hundreds)", X: epss, Y: make([]float64, len(epss))}
	for xi, eps := range epss {
		uSum, cSum := 0.0, 0.0
		for r := 0; r < rc.Runs; r++ {
			sc := BuildScenario(Params{Seed: rc.Seed + int64(r)})
			sol, err := core.Solve(sc, core.Options{Eps: eps, Workers: rc.Workers})
			if err != nil {
				continue
			}
			uSum += sol.Utility
			for _, c := range sol.Candidates {
				cSum += float64(c)
			}
		}
		utility.Y[xi] = uSum / float64(rc.Runs)
		candidates.Y[xi] = cSum / float64(rc.Runs) / 100
	}
	return Figure{
		ID: "ablation-eps", Title: "Ablation: approximation parameter ε",
		XLabel: "eps", YLabel: "utility / candidate count",
		Series: []Series{utility, candidates},
	}
}

// RunObstacleSweep is an ablation probing the paper's "arbitrary obstacles"
// claim quantitatively: HIPO utility as the number of random star-shaped
// obstacles grows on the default plane.
func RunObstacleSweep(rc RunConfig) Figure {
	rc = rc.withDefaults()
	counts := []float64{0, 1, 2, 4, 6, 8}
	s := Series{Label: "HIPO", X: counts, Y: make([]float64, len(counts))}
	for xi, n := range counts {
		sum := 0.0
		for r := 0; r < rc.Runs; r++ {
			seed := rc.Seed + int64(r)
			sc := scenarioWithRandomObstacles(seed, int(n))
			sol, err := core.Solve(sc, core.Options{Eps: rc.Eps, Workers: rc.Workers})
			if err != nil {
				continue
			}
			sum += sol.Utility
		}
		s.Y[xi] = sum / float64(rc.Runs)
	}
	return Figure{
		ID: "ablation-obstacles", Title: "Ablation: number of random obstacles",
		XLabel: "Obstacles", YLabel: "Charging Utility",
		Series: []Series{s},
	}
}

// scenarioWithRandomObstacles builds the Tables 2–4 scenario but replaces
// the fixed two obstacles by n random star-shaped polygons, then places the
// default device population feasibly around them. It is BenchScenario with
// the paper-default device population.
func scenarioWithRandomObstacles(seed int64, n int) *model.Scenario {
	return BenchScenario(seed, n, DefaultDeviceMult)
}
