package expt

import (
	"math"
	"math/rand"

	"hipo/internal/geom"
	"hipo/internal/model"
)

// Topology selects how device positions are drawn in BuildScenarioWith.
// The paper evaluates uniform random topologies only; the clustered and
// corridor presets stress the solver on realistic non-uniform layouts.
type Topology int

const (
	// Uniform draws device positions uniformly over the free space (the
	// paper's setting).
	Uniform Topology = iota
	// Clustered draws devices around a few random cluster centers
	// (sensor-hotspot deployments).
	Clustered
	// Corridor confines devices to a horizontal band through the middle of
	// the region (warehouse aisle / hallway deployments).
	Corridor
)

// BuildScenarioWith is BuildScenario with a selectable device topology.
func BuildScenarioWith(p Params, topo Topology) *model.Scenario {
	if topo == Uniform {
		return BuildScenario(p)
	}
	p = p.withDefaults()
	sc := BuildScenario(Params{ // build types/obstacles, then replace devices
		ChargerMult: p.ChargerMult, DeviceMult: p.DeviceMult,
		AlphaSScale: p.AlphaSScale, AlphaOScale: p.AlphaOScale,
		Pth: p.Pth, PthOffsets: p.PthOffsets,
		DminScale: p.DminScale, DmaxScale: p.DmaxScale,
		DminOverDmax: p.DminOverDmax, Seed: p.Seed,
		EqualDeviceCounts: p.EqualDeviceCounts,
	})
	counts := make(map[int]int)
	for _, d := range sc.Devices {
		counts[d.Type]++
	}
	sc.Devices = nil
	rng := rand.New(rand.NewSource(p.Seed + 7_777))

	var sample func() geom.Vec
	switch topo {
	case Clustered:
		nClusters := 3
		centers := make([]geom.Vec, nClusters)
		for i := range centers {
			for {
				c := geom.V(
					sc.Region.Min.X+5+rng.Float64()*(sc.Region.Width()-10),
					sc.Region.Min.Y+5+rng.Float64()*(sc.Region.Height()-10),
				)
				if sc.FeasiblePosition(c) {
					centers[i] = c
					break
				}
			}
		}
		sample = func() geom.Vec {
			c := centers[rng.Intn(nClusters)]
			return c.Add(geom.V(rng.NormFloat64()*3, rng.NormFloat64()*3))
		}
	case Corridor:
		midY := (sc.Region.Min.Y + sc.Region.Max.Y) / 2
		halfWidth := sc.Region.Height() / 8
		sample = func() geom.Vec {
			return geom.V(
				sc.Region.Min.X+rng.Float64()*sc.Region.Width(),
				midY+(rng.Float64()*2-1)*halfWidth,
			)
		}
	default:
		sample = func() geom.Vec {
			return geom.V(
				sc.Region.Min.X+rng.Float64()*sc.Region.Width(),
				sc.Region.Min.Y+rng.Float64()*sc.Region.Height(),
			)
		}
	}

	for t := 0; t < len(sc.DeviceTypes); t++ {
		for k := 0; k < counts[t]; k++ {
			for {
				pos := sample()
				if sc.Region.Contains(pos) && sc.FeasiblePosition(pos) {
					sc.Devices = append(sc.Devices, model.Device{
						Pos: pos, Orient: rng.Float64() * 2 * math.Pi, Type: t,
					})
					break
				}
			}
		}
	}
	return sc
}
