package expt

import (
	"math"
	"math/rand"

	"hipo/internal/baselines"
	"hipo/internal/core"
	"hipo/internal/geom"
	"hipo/internal/model"
	"hipo/internal/power"
)

// TestbedScenario replicates the field experiment of Section 7: a
// 120 cm × 120 cm square with three obstacles, ten rechargeable sensor
// nodes at the exact strategies listed in the paper, and six chargers of
// three types (one 1 W TB-Powersource, two 2 W TB-Powersource, three 3 W
// TX91501). Distances are in centimeters and powers in milliwatts.
//
// The paper does not publish the testbed's obstacle geometry or the
// charging-model constants fitted to the hardware, so this replica uses
// calibrated stand-ins documented in DESIGN.md: TX91501's published 17 cm
// minimum charging distance, beam widths around 60°, and a/b constants
// scaled so near-field power lands in the few-tens-of-mW range of
// Figure 26.
func TestbedScenario() *model.Scenario {
	deg := func(d float64) float64 { return d * math.Pi / 180 }
	sc := &model.Scenario{
		Region: model.Region{Min: geom.V(0, 0), Max: geom.V(120, 120)},
		ChargerTypes: []model.ChargerType{
			// TB-Powersource tuned to 1 W.
			{Name: "TB-1W", Alpha: deg(60), DMin: 10, DMax: 60, Count: 1},
			// TB-Powersource tuned to 2 W.
			{Name: "TB-2W", Alpha: deg(60), DMin: 10, DMax: 85, Count: 2},
			// TX91501 at 3 W: charges only beyond 17 cm (Powercast datasheet
			// behaviour reported in Section 1).
			{Name: "TX91501-3W", Alpha: deg(60), DMin: 17, DMax: 110, Count: 3},
		},
		DeviceTypes: []model.DeviceType{
			// Two sensor-node builds around the P2110 power receiver.
			{Name: "P2110-A", Alpha: deg(90), PTh: 20}, // threshold 20 mW
			{Name: "P2110-B", Alpha: deg(120), PTh: 20},
		},
		// a in mW·cm², b in cm; a scales with transmit power.
		Power: [][]model.PowerParams{
			{{A: 27000, B: 30}, {A: 30000, B: 30}},
			{{A: 53000, B: 30}, {A: 59000, B: 30}},
			{{A: 80000, B: 30}, {A: 89000, B: 30}},
		},
		Obstacles: []model.Obstacle{
			{Shape: geom.Rect(35, 40, 55, 55)},
			{Shape: geom.Rect(75, 75, 92, 88)},
			{Shape: geom.Poly(geom.V(15, 55), geom.V(28, 60), geom.V(24, 72), geom.V(12, 68))},
		},
	}
	// The ten sensor strategies of Section 7, 〈(x, y), θ°〉.
	specs := []struct {
		x, y, deg float64
	}{
		{20, 15, 200}, {47, 20, 350}, {113, 65, 20}, {20, 85, 140}, {13, 95, 40},
		{7, 115, 190}, {27, 110, 310}, {47, 100, 150}, {50, 118, 160}, {60, 93, 270},
	}
	for i, s := range specs {
		typ := 0
		if i >= 5 { // each type has five nodes
			typ = 1
		}
		sc.Devices = append(sc.Devices, model.Device{
			Pos:    geom.V(s.x, s.y),
			Orient: deg(s.deg),
			Type:   typ,
		})
	}
	return sc
}

// TestbedResult holds the Section 7 comparison outcomes.
type TestbedResult struct {
	Scenario *model.Scenario
	// Utilities[name][j] is device j's charging utility under algorithm
	// name (Figure 25).
	Utilities map[string][]float64
	// Powers[name][j] is device j's received power in mW (Figure 26).
	Powers map[string][]float64
	// Placements[name] is the placement each algorithm produced.
	Placements map[string][]model.Strategy
}

// TestbedAlgorithms are the three algorithms the field experiment compares.
var TestbedAlgorithms = []string{
	baselines.NameHIPO, baselines.NameGPPDCSTriangle, baselines.NameGPADTriangle,
}

// RunTestbed regenerates Figures 24–26: it solves the testbed with HIPO,
// GPPDCS Triangle, and GPAD Triangle and reports per-device utilities and
// received powers.
func RunTestbed(rc RunConfig) TestbedResult {
	rc = rc.withDefaults()
	sc := TestbedScenario()
	res := TestbedResult{
		Scenario:   sc,
		Utilities:  make(map[string][]float64),
		Powers:     make(map[string][]float64),
		Placements: make(map[string][]model.Strategy),
	}
	for a, name := range TestbedAlgorithms {
		var placed []model.Strategy
		if name == baselines.NameHIPO {
			sol, err := core.Solve(sc, rc.coreOptions())
			if err == nil {
				placed = sol.Placed
			}
		} else {
			rng := rand.New(rand.NewSource(rc.Seed*100 + int64(a)))
			placed = baselines.Run(name, sc, rng, rc.eps1())
		}
		res.Placements[name] = placed
		res.Utilities[name] = power.DeviceUtilities(sc, placed)
		res.Powers[name] = power.DevicePowers(sc, placed)
	}
	return res
}

// TestbedUtilityFigure renders the per-device utilities as a Figure
// (Figure 25: device index on X).
func TestbedUtilityFigure(res TestbedResult) Figure {
	fig := Figure{
		ID: "fig25", Title: "Charging utility of each device (testbed)",
		XLabel: "Device Index", YLabel: "Charging Utility",
	}
	for _, name := range TestbedAlgorithms {
		us := res.Utilities[name]
		xs := make([]float64, len(us))
		for i := range xs {
			xs[i] = float64(i + 1)
		}
		fig.Series = append(fig.Series, Series{Label: name, X: xs, Y: us})
	}
	return fig
}

// TestbedPowerCDFFigure renders the received-power CDF (Figure 26).
func TestbedPowerCDFFigure(res TestbedResult) Figure {
	fig := Figure{
		ID: "fig26", Title: "Charging power CDF of different devices (testbed)",
		XLabel: "Charging Power (mW)", YLabel: "CDF",
	}
	for _, name := range TestbedAlgorithms {
		xs, ys := CDF(res.Powers[name])
		fig.Series = append(fig.Series, Series{Label: name, X: xs, Y: ys})
	}
	return fig
}
