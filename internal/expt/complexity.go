package expt

import (
	"math"
	"time"

	"hipo/internal/core"
)

// RunComplexitySweep measures end-to-end solve wall time versus the number
// of devices (1×–8× the initial counts) and reports both the measured
// times (normalized to the 1× point) and the slope of the log-log fit —
// the empirical growth exponent to compare against the No⁴ factor of
// Theorem 4.2's worst-case bound (practical instances are far below the
// bound because candidate counts stay near-linear in device density).
func RunComplexitySweep(rc RunConfig) Figure {
	rc = rc.withDefaults()
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	times := Series{Label: "solve time (normalized)", X: xs, Y: make([]float64, len(xs))}
	for xi, x := range xs {
		total := 0.0
		for r := 0; r < rc.Runs; r++ {
			sc := BuildScenario(Params{DeviceMult: int(x), Seed: rc.Seed + int64(r)})
			start := time.Now()
			_, err := core.Solve(sc, core.Options{Eps: rc.Eps, Workers: rc.Workers})
			if err != nil {
				continue
			}
			total += time.Since(start).Seconds()
		}
		times.Y[xi] = total / float64(rc.Runs)
	}
	norm := times.Y[0]
	if norm <= 0 {
		norm = 1e-9
	}
	for i := range times.Y {
		times.Y[i] /= norm
	}
	exponent := Series{
		Label: "fitted exponent",
		X:     []float64{0},
		Y:     []float64{logLogSlope(times.X, times.Y)},
	}
	return Figure{
		ID: "complexity", Title: "Empirical solve-time scaling vs No",
		XLabel: "Number of Devices (Times)", YLabel: "Time (normalized)",
		Series: []Series{times, exponent},
	}
}

// logLogSlope returns the least-squares slope of log(y) against log(x),
// skipping non-positive points.
func logLogSlope(xs, ys []float64) float64 {
	var lx, ly []float64
	for i := range xs {
		if xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	n := float64(len(lx))
	if n < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	for i := range lx {
		sx += lx[i]
		sy += ly[i]
		sxx += lx[i] * lx[i]
		sxy += lx[i] * ly[i]
	}
	den := n*sxx - sx*sx
	if math.Abs(den) < 1e-12 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}
