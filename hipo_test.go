package hipo

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// demoScenario builds a small heterogeneous scenario with one obstacle.
func demoScenario() *Scenario {
	return &Scenario{
		Min: Point{0, 0},
		Max: Point{40, 40},
		ChargerTypes: []ChargerSpec{
			{Name: "narrow", Alpha: math.Pi / 3, DMin: 3, DMax: 8, Count: 2},
			{Name: "wide", Alpha: math.Pi / 2, DMin: 2, DMax: 6, Count: 2},
		},
		DeviceTypes: []DeviceSpec{
			{Name: "sensor", Alpha: math.Pi, PTh: 0.05},
			{Name: "tag", Alpha: 3 * math.Pi / 4, PTh: 0.05},
		},
		Power: [][]PowerParams{
			{{A: 100, B: 40}, {A: 130, B: 52}},
			{{A: 110, B: 44}, {A: 140, B: 56}},
		},
		Devices: []Device{
			{Pos: Point{10, 10}, Orient: 0, Type: 0},
			{Pos: Point{14, 12}, Orient: math.Pi, Type: 1},
			{Pos: Point{28, 28}, Orient: math.Pi / 2, Type: 0},
			{Pos: Point{30, 24}, Orient: math.Pi, Type: 1},
		},
		Obstacles: []Obstacle{
			{Vertices: []Point{{18, 16}, {22, 16}, {22, 20}, {18, 20}}},
		},
	}
}

func TestSolvePublicAPI(t *testing.T) {
	s := demoScenario()
	p, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Chargers) == 0 || len(p.Chargers) > 4 {
		t.Fatalf("placed %d chargers", len(p.Chargers))
	}
	if p.Utility <= 0 || p.Utility > 1 {
		t.Fatalf("utility = %v", p.Utility)
	}
	if len(p.CandidateCounts) != 2 {
		t.Fatalf("candidate counts = %v", p.CandidateCounts)
	}
	// Evaluate must agree with the reported utility.
	m, err := s.Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Utility-p.Utility) > 1e-12 {
		t.Errorf("evaluate %v != solve %v", m.Utility, p.Utility)
	}
	if len(m.DeviceUtilities) != 4 || len(m.DevicePowers) != 4 {
		t.Error("metrics vectors wrong length")
	}
}

func TestSolveOptions(t *testing.T) {
	s := demoScenario()
	p1, err := s.Solve(WithEps(0.1), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := s.Solve(WithPerTypeGreedy())
	if err != nil {
		t.Fatal(err)
	}
	if p1.Utility <= 0 || p2.Utility <= 0 {
		t.Error("options broke solving")
	}
}

func TestValidateRejectsBadScenario(t *testing.T) {
	s := demoScenario()
	s.Power = nil
	if err := s.Validate(); err == nil {
		t.Error("expected validation error")
	}
	if _, err := s.Solve(); err == nil {
		t.Error("Solve should reject invalid scenario")
	}
}

func TestScenarioJSONRoundTrip(t *testing.T) {
	s := demoScenario()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var s2 Scenario
	if err := json.Unmarshal(b, &s2); err != nil {
		t.Fatal(err)
	}
	if len(s2.Devices) != len(s.Devices) || len(s2.Obstacles) != 1 {
		t.Error("round trip lost data")
	}
	if s2.ChargerTypes[0].Alpha != s.ChargerTypes[0].Alpha {
		t.Error("round trip changed values")
	}
	if err := s2.Validate(); err != nil {
		t.Errorf("round-tripped scenario invalid: %v", err)
	}
}

func TestPlacementJSONRoundTrip(t *testing.T) {
	s := demoScenario()
	p, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var p2 Placement
	if err := json.Unmarshal(b, &p2); err != nil {
		t.Fatal(err)
	}
	if len(p2.Chargers) != len(p.Chargers) || p2.Utility != p.Utility {
		t.Error("placement round trip lost data")
	}
}

func TestRedeployAPI(t *testing.T) {
	s := demoScenario()
	old, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// Perturb devices and re-solve.
	s2 := demoScenario()
	for i := range s2.Devices {
		s2.Devices[i].Pos.X += 2
	}
	new_, err := s2.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// Pad to equal counts per type if needed.
	if typeCounts(old) != typeCounts(new_) {
		t.Skip("placements differ in size; redeploy needs equal counts")
	}
	cost := RedeployCost{PerMeter: 1, PerRadian: 1}
	mt, err := s.RedeployMinTotal(old, new_, cost)
	if err != nil {
		t.Fatal(err)
	}
	mm, err := s.RedeployMinMax(old, new_, cost)
	if err != nil {
		t.Fatal(err)
	}
	if mm.MaxCost > mt.MaxCost+1e-9 {
		t.Errorf("minmax max %v > mintotal max %v", mm.MaxCost, mt.MaxCost)
	}
	if mt.TotalCost > mm.TotalCost+1e-9 {
		t.Errorf("mintotal total %v > minmax total %v", mt.TotalCost, mm.TotalCost)
	}
	if len(mt.Moves) != len(old.Chargers) {
		t.Errorf("moves = %d", len(mt.Moves))
	}
}

func typeCounts(p *Placement) [8]int {
	var c [8]int
	for _, ch := range p.Chargers {
		if ch.Type < 8 {
			c[ch.Type]++
		}
	}
	return c
}

func TestSolveBudgetedAPI(t *testing.T) {
	s := demoScenario()
	b := DeploymentBudget{
		Depot: Point{0, 0}, PerMeter: 1, PerRadian: 0.5, Budget: 30,
	}
	p, err := s.SolveBudgeted(b)
	if err != nil {
		t.Fatal(err)
	}
	unlimited, err := s.SolveBudgeted(DeploymentBudget{Depot: Point{0, 0}, PerMeter: 1, Budget: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if p.Utility > unlimited.Utility+1e-9 {
		t.Error("tight budget beat unlimited budget")
	}
}

func TestSolveFairnessAPI(t *testing.T) {
	s := demoScenario()
	mm, err := s.SolveMaxMin(300, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(mm.Chargers) == 0 {
		t.Error("max-min placed nothing")
	}
	pf, err := s.SolveProportionalFair()
	if err != nil {
		t.Fatal(err)
	}
	if pf.Utility <= 0 {
		t.Error("proportional fair utility zero")
	}
}

func TestApproximationRatio(t *testing.T) {
	if got := ApproximationRatio(); math.Abs(got-0.35) > 1e-12 {
		t.Errorf("default ratio = %v", got)
	}
	if got := ApproximationRatio(WithEps(0.25)); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("ratio = %v", got)
	}
}

func TestSolveContinuousGreedy(t *testing.T) {
	s := demoScenario()
	p, err := s.Solve(WithContinuousGreedy())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Chargers) == 0 || p.Utility <= 0 {
		t.Fatalf("continuous greedy placement = %+v", p)
	}
	// Should be within reach of the default greedy's value.
	g, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if p.Utility < 0.7*g.Utility {
		t.Errorf("continuous %v far below greedy %v", p.Utility, g.Utility)
	}
}

func TestFieldAPI(t *testing.T) {
	s := demoScenario()
	p, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	f, err := s.Field(p, 0, 32)
	if err != nil {
		t.Fatal(err)
	}
	if f.NX != 32 || f.NY != 32 || len(f.Values) != 32 {
		t.Fatal("grid shape wrong")
	}
	if f.Peak <= 0 {
		t.Error("field peak should be positive after a solve")
	}
	if f.CoverageAtPth < 0 || f.CoverageAtPth > 1 {
		t.Errorf("coverage = %v", f.CoverageAtPth)
	}
	var buf bytes.Buffer
	if err := f.WriteHeatmap(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "</svg>") {
		t.Error("heatmap truncated")
	}
	// Error paths.
	if _, err := s.Field(p, 9, 32); err == nil {
		t.Error("bad probe type should fail")
	}
	if _, err := s.Field(p, 0, 1); err == nil {
		t.Error("tiny resolution should fail")
	}
}

func TestDiagnosticsAPI(t *testing.T) {
	s := demoScenario()
	area, err := s.FeasibleArea(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if area <= 0 {
		t.Errorf("feasible area = %v", area)
	}
	// Area can never exceed the charger's full annulus.
	ct := s.ChargerTypes[0]
	annulus := math.Pi * (ct.DMax*ct.DMax - ct.DMin*ct.DMin)
	if area > annulus+1e-9 {
		t.Errorf("area %v exceeds annulus %v", area, annulus)
	}
	n, err := s.FeasibleCellCount(0, 0, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if n < 1 {
		t.Errorf("cell count = %d", n)
	}
	// Out-of-range errors.
	if _, err := s.FeasibleArea(9, 0); err == nil {
		t.Error("bad charger type should fail")
	}
	if _, err := s.FeasibleArea(0, 99); err == nil {
		t.Error("bad device index should fail")
	}
	if _, err := s.FeasibleCellCount(9, 0, 0.15); err == nil {
		t.Error("bad charger type should fail")
	}
	if _, err := s.FeasibleCellCount(0, 99, 0.15); err == nil {
		t.Error("bad device index should fail")
	}
	for _, eps := range []float64{0, -0.1, 0.5, 0.9} {
		if _, err := s.FeasibleCellCount(0, 0, eps); err == nil {
			t.Errorf("eps %v should fail", eps)
		}
	}
}

func TestUnreachableDevices(t *testing.T) {
	s := demoScenario()
	un, err := s.UnreachableDevices()
	if err != nil {
		t.Fatal(err)
	}
	if len(un) != 0 {
		t.Errorf("open scenario should have no unreachable devices: %v", un)
	}
	// Box a device in tightly: walls all around within every charger's DMin.
	s2 := demoScenario()
	s2.Obstacles = append(s2.Obstacles,
		Obstacle{Vertices: []Point{{9, 9}, {11, 9}, {11, 9.5}, {9, 9.5}}},
		Obstacle{Vertices: []Point{{9, 10.5}, {11, 10.5}, {11, 11}, {9, 11}}},
		Obstacle{Vertices: []Point{{9, 9.5}, {9.5, 9.5}, {9.5, 10.5}, {9, 10.5}}},
		Obstacle{Vertices: []Point{{10.5, 9.5}, {11, 9.5}, {11, 10.5}, {10.5, 10.5}}},
	)
	un2, err := s2.UnreachableDevices()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, j := range un2 {
		if j == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("boxed-in device 0 should be unreachable: %v", un2)
	}
}

func TestSolveWithCanceledContext(t *testing.T) {
	s := demoScenario()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Solve(WithContext(ctx)); err == nil {
		t.Error("canceled context should abort the solve")
	}
	// A live context solves normally.
	p, err := s.Solve(WithContext(context.Background()))
	if err != nil {
		t.Fatal(err)
	}
	if p.Utility <= 0 {
		t.Error("live-context solve broken")
	}
}
