package hipo

import (
	"encoding/json"
	"math"
	"testing"
)

// incMutationChain is a fixed mutation sequence exercising all four ops.
func incMutationChain() []Mutation {
	return []Mutation{
		MutateMoveDevice(1, Point{X: 16, Y: 14}, 0.5),
		MutateAddDevice(Device{Pos: Point{X: 33, Y: 9}, Orient: 1.0, Type: 1}),
		MutateAddObstacle(Obstacle{Vertices: []Point{{X: 6, Y: 28}, {X: 9, Y: 28}, {X: 9, Y: 31}, {X: 6, Y: 31}}}),
		MutateRemoveDevice(0),
	}
}

// TestIncrementalMatchesColdSolve pins the public contract: after every
// mutation, the session's placement equals a cold Solve of the mutated
// scenario bit for bit.
func TestIncrementalMatchesColdSolve(t *testing.T) {
	s := demoScenario()
	inc, err := s.NewIncremental(WithEps(0.3))
	if err != nil {
		t.Fatal(err)
	}
	check := func(label string) {
		t.Helper()
		got, err := inc.Solve()
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		want, err := inc.Scenario().Solve(WithEps(0.3))
		if err != nil {
			t.Fatalf("%s: cold: %v", label, err)
		}
		if math.Float64bits(got.Utility) != math.Float64bits(want.Utility) {
			t.Fatalf("%s: utility %v, cold %v", label, got.Utility, want.Utility)
		}
		if len(got.Chargers) != len(want.Chargers) {
			t.Fatalf("%s: %d chargers, cold %d", label, len(got.Chargers), len(want.Chargers))
		}
		for i := range got.Chargers {
			if got.Chargers[i] != want.Chargers[i] {
				t.Fatalf("%s: charger %d = %+v, cold %+v", label, i, got.Chargers[i], want.Chargers[i])
			}
		}
	}
	check("prime")
	for i, m := range incMutationChain() {
		if err := inc.Apply(m); err != nil {
			t.Fatalf("mutation %d: %v", i, err)
		}
		check(m.Op)
	}
	st := inc.Stats()
	if st.Mutations != 4 || st.Solves != 5 {
		t.Fatalf("stats = %+v, want 4 mutations / 5 solves", st)
	}
	if st.SweepsReused == 0 || st.TasksReused == 0 {
		t.Fatalf("no cache reuse: %+v", st)
	}
}

// TestIncrementalDeterministicChain runs the same mutation chain through two
// independent sessions and requires identical scenario-hash chains and
// identical placements at every step — replaying a stored mutation trace
// must be fully reproducible.
func TestIncrementalDeterministicChain(t *testing.T) {
	run := func() (hashes []string, placements []*Placement) {
		inc, err := demoScenario().NewIncremental(WithEps(0.3))
		if err != nil {
			t.Fatal(err)
		}
		record := func() {
			h, err := inc.Scenario().ScenarioHash()
			if err != nil {
				t.Fatal(err)
			}
			p, err := inc.Solve()
			if err != nil {
				t.Fatal(err)
			}
			hashes, placements = append(hashes, h), append(placements, p)
		}
		record()
		for _, m := range incMutationChain() {
			if err := inc.Apply(m); err != nil {
				t.Fatal(err)
			}
			record()
		}
		return hashes, placements
	}
	h1, p1 := run()
	h2, p2 := run()
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatalf("step %d: scenario hash diverged: %s vs %s", i, h1[i], h2[i])
		}
		a, _ := json.Marshal(p1[i])
		b, _ := json.Marshal(p2[i])
		if string(a) != string(b) {
			t.Fatalf("step %d: placements diverged:\n%s\n%s", i, a, b)
		}
	}
	// The chain must actually change the scenario at every step.
	seen := map[string]bool{}
	for _, h := range h1 {
		if seen[h] {
			t.Fatalf("duplicate scenario hash in chain: %s", h)
		}
		seen[h] = true
	}
}

// TestSolveIncrementalOneShot checks the convenience form against a
// manually mutated scenario.
func TestSolveIncrementalOneShot(t *testing.T) {
	s := demoScenario()
	got, err := s.SolveIncremental([]Mutation{MutateMoveDevice(2, Point{X: 26, Y: 30}, 1.2)}, WithEps(0.3))
	if err != nil {
		t.Fatal(err)
	}
	mutated := demoScenario()
	mutated.Devices[2].Pos, mutated.Devices[2].Orient = Point{X: 26, Y: 30}, 1.2
	want, err := mutated.Solve(WithEps(0.3))
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got.Utility) != math.Float64bits(want.Utility) || len(got.Chargers) != len(want.Chargers) {
		t.Fatalf("one-shot mismatch: %+v vs %+v", got, want)
	}
	// The original scenario must be untouched.
	if s.Devices[2].Pos != demoScenario().Devices[2].Pos {
		t.Fatal("SolveIncremental mutated the caller's scenario")
	}
}

// TestIncrementalRedeploy plans the switching moves between consecutive
// incremental placements.
func TestIncrementalRedeploy(t *testing.T) {
	inc, err := demoScenario().NewIncremental(WithEps(0.3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Redeploy(RedeployCost{PerMeter: 1}); err == nil {
		t.Fatal("redeploy before any solve succeeded")
	}
	first, err := inc.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Redeploy(RedeployCost{PerMeter: 1}); err == nil {
		t.Fatal("redeploy after a single solve succeeded")
	}
	if err := inc.Apply(MutateMoveDevice(0, Point{X: 8, Y: 20}, 0)); err != nil {
		t.Fatal(err)
	}
	second, err := inc.Solve()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := inc.Redeploy(RedeployCost{PerMeter: 1, PerInstall: 5, PerDecommission: 5})
	if err != nil {
		t.Fatal(err)
	}
	if plan.TotalCost < 0 || len(plan.Moves) == 0 {
		t.Fatalf("degenerate plan: %+v", plan)
	}
	_ = first
	_ = second
	// Mutation JSON round-trips (stored traces must replay).
	m := MutateAddObstacle(Obstacle{Vertices: []Point{{X: 1, Y: 1}, {X: 2, Y: 1}, {X: 2, Y: 2}}})
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Mutation
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Op != MutationAddObstacle || len(back.Obstacle.Vertices) != 3 {
		t.Fatalf("mutation did not round-trip: %+v", back)
	}
}
