// Coverage: diagnose a deployment before and after solving. Uses the
// feasible-area diagnostics to spot hard-to-reach sensors up front, solves,
// then renders the charging-power field as an SVG heatmap and reports the
// area fraction covered at the power threshold.
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	"hipo"
)

func main() {
	scenario := buildOffice()

	// 1. Pre-solve diagnostics: how much room does each sensor leave for
	// chargers, and is anything unreachable outright?
	fmt.Println("pre-solve feasibility (area in m² where a charger could serve each sensor):")
	for j := range scenario.Devices {
		best := 0.0
		for q := range scenario.ChargerTypes {
			a, err := scenario.FeasibleArea(q, j)
			if err != nil {
				log.Fatal(err)
			}
			best = math.Max(best, a)
		}
		marker := ""
		if best < 5 {
			marker = "  <- tight!"
		}
		fmt.Printf("  sensor %2d: %6.1f m²%s\n", j, best, marker)
	}
	if un, _ := scenario.UnreachableDevices(); len(un) > 0 {
		fmt.Printf("unreachable sensors: %v\n", un)
	}

	// 2. Solve and report.
	placement, err := scenario.Solve()
	if err != nil {
		log.Fatal(err)
	}
	metrics, err := scenario.Evaluate(placement)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplaced %d chargers, utility %.3f (worst sensor %.3f)\n",
		len(placement.Chargers), metrics.Utility, metrics.MinUtility)

	// 3. Power-field heatmap: where would a wandering tag get charged?
	field, err := scenario.Field(placement, 0, 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("peak field power %.4f; %.1f%% of free space above the charging threshold\n",
		field.Peak, 100*field.CoverageAtPth)

	out, err := os.Create("coverage.svg")
	if err != nil {
		log.Fatal(err)
	}
	defer out.Close()
	if err := field.WriteHeatmap(out); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote coverage.svg")
}

// buildOffice lays out a 25 m × 18 m office with two partition walls and
// nine desk sensors.
func buildOffice() *hipo.Scenario {
	deg := func(d float64) float64 { return d * math.Pi / 180 }
	sc := &hipo.Scenario{
		Min: hipo.Point{X: 0, Y: 0},
		Max: hipo.Point{X: 25, Y: 18},
		ChargerTypes: []hipo.ChargerSpec{
			{Name: "ceiling", Alpha: deg(70), DMin: 2.5, DMax: 8, Count: 4},
			{Name: "desk-pad", Alpha: deg(120), DMin: 1, DMax: 4, Count: 3},
		},
		DeviceTypes: []hipo.DeviceSpec{
			{Name: "badge", Alpha: deg(160), PTh: 0.05},
		},
		Power: [][]hipo.PowerParams{
			{{A: 120, B: 44}},
			{{A: 90, B: 36}},
		},
		Obstacles: []hipo.Obstacle{
			{Vertices: []hipo.Point{{X: 8, Y: 0}, {X: 8.4, Y: 0}, {X: 8.4, Y: 11}, {X: 8, Y: 11}}},
			{Vertices: []hipo.Point{{X: 16, Y: 7}, {X: 16.4, Y: 7}, {X: 16.4, Y: 18}, {X: 16, Y: 18}}},
		},
	}
	desks := []struct{ x, y, facing float64 }{
		{x: 3, y: 4, facing: 60}, {x: 5, y: 14, facing: 290}, {x: 7.5, y: 8, facing: 180},
		{x: 11, y: 3, facing: 100}, {x: 13, y: 15, facing: 250}, {x: 15.5, y: 9, facing: 170},
		{x: 19, y: 4, facing: 80}, {x: 21, y: 12, facing: 200}, {x: 23.5, y: 16, facing: 220},
	}
	for _, d := range desks {
		sc.Devices = append(sc.Devices, hipo.Device{
			Pos: hipo.Point{X: d.x, Y: d.y}, Orient: deg(d.facing), Type: 0,
		})
	}
	return sc
}
