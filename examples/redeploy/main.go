// Redeploy: the device topology changes overnight (half the sensors move),
// so yesterday's chargers must be migrated to today's optimal placement.
// Compares the two objectives of Section 8.1: minimizing the total
// switching overhead versus minimizing the worst single charger's overhead
// (and total overhead among such plans).
package main

import (
	"fmt"
	"log"
	"math"

	"hipo"
)

func main() {
	yesterday := buildFloor(0)
	today := buildFloor(1)

	oldPlacement, err := yesterday.Solve()
	if err != nil {
		log.Fatal(err)
	}
	newPlacement, err := today.Solve()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("yesterday: utility %.3f with %d chargers\n", oldPlacement.Utility, len(oldPlacement.Chargers))
	fmt.Printf("today:     utility %.3f with %d chargers\n\n", newPlacement.Utility, len(newPlacement.Chargers))

	cost := hipo.RedeployCost{PerMeter: 1, PerRadian: 0.5}
	minTotal, err := yesterday.RedeployMinTotal(oldPlacement, newPlacement, cost)
	if err != nil {
		log.Fatal(err)
	}
	minMax, err := yesterday.RedeployMinMax(oldPlacement, newPlacement, cost)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("min-total plan: total overhead %.2f, worst charger %.2f\n",
		minTotal.TotalCost, minTotal.MaxCost)
	fmt.Printf("min-max plan:   total overhead %.2f, worst charger %.2f\n\n",
		minMax.TotalCost, minMax.MaxCost)

	fmt.Println("min-max migration orders:")
	for i, mv := range minMax.Moves {
		fmt.Printf("  charger %2d (type %d): (%5.1f,%5.1f)@%5.1f° -> (%5.1f,%5.1f)@%5.1f°  cost %.2f\n",
			i, mv.From.Type,
			mv.From.Pos.X, mv.From.Pos.Y, mv.From.Orient*180/math.Pi,
			mv.To.Pos.X, mv.To.Pos.Y, mv.To.Orient*180/math.Pi, mv.Cost)
	}
}

// buildFloor returns a 35 m × 35 m floor with one obstacle and ten sensors;
// phase 1 relocates half the sensors to the opposite side.
func buildFloor(phase int) *hipo.Scenario {
	sc := &hipo.Scenario{
		Min: hipo.Point{X: 0, Y: 0},
		Max: hipo.Point{X: 35, Y: 35},
		ChargerTypes: []hipo.ChargerSpec{
			{Name: "A", Alpha: math.Pi / 3, DMin: 3, DMax: 9, Count: 3},
			{Name: "B", Alpha: math.Pi / 2, DMin: 2, DMax: 6, Count: 2},
		},
		DeviceTypes: []hipo.DeviceSpec{
			{Name: "node", Alpha: math.Pi, PTh: 0.05},
		},
		Power: [][]hipo.PowerParams{
			{{A: 100, B: 40}},
			{{A: 120, B: 48}},
		},
		Obstacles: []hipo.Obstacle{
			{Vertices: []hipo.Point{{X: 16, Y: 14}, {X: 20, Y: 14}, {X: 20, Y: 20}, {X: 16, Y: 20}}},
		},
	}
	deg := func(d float64) float64 { return d * math.Pi / 180 }
	fixed := []hipo.Device{
		{Pos: hipo.Point{X: 6, Y: 6}, Orient: deg(45), Type: 0},
		{Pos: hipo.Point{X: 10, Y: 25}, Orient: deg(300), Type: 0},
		{Pos: hipo.Point{X: 28, Y: 8}, Orient: deg(120), Type: 0},
		{Pos: hipo.Point{X: 30, Y: 28}, Orient: deg(210), Type: 0},
		{Pos: hipo.Point{X: 8, Y: 15}, Orient: deg(0), Type: 0},
	}
	movableBefore := []hipo.Device{
		{Pos: hipo.Point{X: 5, Y: 30}, Orient: deg(315), Type: 0},
		{Pos: hipo.Point{X: 12, Y: 9}, Orient: deg(90), Type: 0},
		{Pos: hipo.Point{X: 25, Y: 20}, Orient: deg(180), Type: 0},
		{Pos: hipo.Point{X: 14, Y: 28}, Orient: deg(270), Type: 0},
		{Pos: hipo.Point{X: 24, Y: 30}, Orient: deg(250), Type: 0},
	}
	movableAfter := []hipo.Device{
		{Pos: hipo.Point{X: 30, Y: 5}, Orient: deg(135), Type: 0},
		{Pos: hipo.Point{X: 25, Y: 12}, Orient: deg(200), Type: 0},
		{Pos: hipo.Point{X: 6, Y: 20}, Orient: deg(20), Type: 0},
		{Pos: hipo.Point{X: 28, Y: 24}, Orient: deg(160), Type: 0},
		{Pos: hipo.Point{X: 12, Y: 32}, Orient: deg(290), Type: 0},
	}
	sc.Devices = append(sc.Devices, fixed...)
	if phase == 0 {
		sc.Devices = append(sc.Devices, movableBefore...)
	} else {
		sc.Devices = append(sc.Devices, movableAfter...)
	}
	return sc
}
