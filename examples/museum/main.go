// Museum: power battery-free exhibit tags in a gallery whose walls block
// wireless power. Compares the utility-maximizing placement against the
// proportional-fairness placement — in a museum, every exhibit staying
// alive matters more than total harvested energy.
package main

import (
	"fmt"
	"log"
	"math"

	"hipo"
)

func main() {
	scenario := buildGallery()

	// 1. Maximize total charging utility (the headline HIPO objective).
	best, err := scenario.Solve()
	if err != nil {
		log.Fatal(err)
	}
	// 2. Proportional fairness: log-utility spreads power across exhibits.
	fair, err := scenario.SolveProportionalFair()
	if err != nil {
		log.Fatal(err)
	}

	for _, run := range []struct {
		name string
		p    *hipo.Placement
	}{{"max-utility", best}, {"proportional-fair", fair}} {
		m, err := scenario.Evaluate(run.p)
		if err != nil {
			log.Fatal(err)
		}
		starved := 0
		for _, u := range m.DeviceUtilities {
			if u < 0.2 {
				starved++
			}
		}
		fmt.Printf("%-18s total %.3f  worst exhibit %.3f  starved(<0.2) %d/%d\n",
			run.name, m.Utility, m.MinUtility, starved, len(m.DeviceUtilities))
	}

	fmt.Println("\nmax-utility placement:")
	for _, c := range best.Chargers {
		fmt.Printf("  %-10s (%5.1f, %5.1f) @ %5.1f°\n",
			scenario.ChargerTypes[c.Type].Name, c.Pos.X, c.Pos.Y, c.Orient*180/math.Pi)
	}
}

// buildGallery lays out a 30 m × 20 m gallery: two exhibition walls, a
// central vitrine, and twelve exhibit tags of three hardware generations
// mounted on walls and plinths.
func buildGallery() *hipo.Scenario {
	sc := &hipo.Scenario{
		Min: hipo.Point{X: 0, Y: 0},
		Max: hipo.Point{X: 30, Y: 20},
		ChargerTypes: []hipo.ChargerSpec{
			// Ceiling-track spots: narrow, long reach.
			{Name: "track-spot", Alpha: math.Pi / 6, DMin: 4, DMax: 10, Count: 3},
			// Wall boxes: wide, short reach.
			{Name: "wall-box", Alpha: math.Pi / 2, DMin: 1.5, DMax: 6, Count: 4},
		},
		DeviceTypes: []hipo.DeviceSpec{
			{Name: "tag-v1", Alpha: math.Pi / 2, PTh: 0.05},
			{Name: "tag-v2", Alpha: 3 * math.Pi / 4, PTh: 0.04},
			{Name: "tag-v3", Alpha: math.Pi, PTh: 0.03},
		},
		Power: [][]hipo.PowerParams{
			{{A: 100, B: 40}, {A: 120, B: 48}, {A: 140, B: 56}},
			{{A: 110, B: 44}, {A: 132, B: 52}, {A: 154, B: 60}},
		},
		Obstacles: []hipo.Obstacle{
			// Two interior exhibition walls.
			{Vertices: []hipo.Point{{X: 8, Y: 0}, {X: 8.6, Y: 0}, {X: 8.6, Y: 12}, {X: 8, Y: 12}}},
			{Vertices: []hipo.Point{{X: 19, Y: 8}, {X: 19.6, Y: 8}, {X: 19.6, Y: 20}, {X: 19, Y: 20}}},
			// Central vitrine.
			{Vertices: []hipo.Point{{X: 13, Y: 9}, {X: 16, Y: 9}, {X: 16, Y: 11}, {X: 13, Y: 11}}},
		},
	}
	deg := func(d float64) float64 { return d * math.Pi / 180 }
	type tag struct {
		x, y, facing float64
		gen          int
	}
	for _, t := range []tag{
		// West room.
		{2, 4, 0, 0}, {5, 16, 270, 1}, {7.5, 8, 180, 2}, {3, 11, 45, 2},
		// Middle room.
		{10, 3, 90, 0}, {12, 17, 315, 1}, {17, 5, 135, 1}, {14, 12.5, 90, 2},
		// East room.
		{21, 2, 90, 0}, {26, 6, 180, 1}, {28, 14, 200, 2}, {22, 18, 300, 0},
	} {
		sc.Devices = append(sc.Devices, hipo.Device{
			Pos:    hipo.Point{X: t.x, Y: t.y},
			Orient: deg(t.facing),
			Type:   t.gen,
		})
	}
	return sc
}
