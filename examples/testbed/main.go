// Testbed: the Section 7 field experiment replica — a 120 cm × 120 cm
// square with three obstacles, ten Powercast P2110-based sensor nodes at
// the exact strategies published in the paper, and six chargers of three
// types (one 1 W TB-Powersource, two 2 W TB-Powersource, three 3 W
// TX91501). Reproduces the Figure 25 per-device utilities. Distances in
// centimeters, powers in milliwatts.
package main

import (
	"fmt"
	"log"
	"math"

	"hipo"
)

func main() {
	scenario := buildTestbed()

	placement, err := scenario.Solve()
	if err != nil {
		log.Fatal(err)
	}
	metrics, err := scenario.Evaluate(placement)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("HIPO placement on the field testbed:")
	for _, c := range placement.Chargers {
		fmt.Printf("  %-12s at (%5.1f, %5.1f) cm facing %5.1f°\n",
			scenario.ChargerTypes[c.Type].Name, c.Pos.X, c.Pos.Y, c.Orient*180/math.Pi)
	}
	fmt.Printf("\ntotal charging utility: %.4f\n", metrics.Utility)
	fmt.Println("per-device outcome (cf. paper Figure 25):")
	charged := 0
	for j, u := range metrics.DeviceUtilities {
		if u > 0 {
			charged++
		}
		fmt.Printf("  device #%-2d utility %.3f  power %6.2f mW\n", j+1, u, metrics.DevicePowers[j])
	}
	fmt.Printf("\n%d/10 devices receive power — the paper reports HIPO charges all devices\n", charged)
}

// buildTestbed reconstructs the Section 7 layout with the calibrated
// stand-in hardware constants documented in DESIGN.md.
func buildTestbed() *hipo.Scenario {
	deg := func(d float64) float64 { return d * math.Pi / 180 }
	sc := &hipo.Scenario{
		Min: hipo.Point{X: 0, Y: 0},
		Max: hipo.Point{X: 120, Y: 120},
		ChargerTypes: []hipo.ChargerSpec{
			{Name: "TB-1W", Alpha: deg(60), DMin: 10, DMax: 60, Count: 1},
			{Name: "TB-2W", Alpha: deg(60), DMin: 10, DMax: 85, Count: 2},
			// TX91501 only transmits beyond 17 cm (Powercast behaviour the
			// paper measured).
			{Name: "TX91501-3W", Alpha: deg(60), DMin: 17, DMax: 110, Count: 3},
		},
		DeviceTypes: []hipo.DeviceSpec{
			{Name: "P2110-A", Alpha: deg(90), PTh: 20},
			{Name: "P2110-B", Alpha: deg(120), PTh: 20},
		},
		Power: [][]hipo.PowerParams{
			{{A: 27000, B: 30}, {A: 30000, B: 30}},
			{{A: 53000, B: 30}, {A: 59000, B: 30}},
			{{A: 80000, B: 30}, {A: 89000, B: 30}},
		},
		Obstacles: []hipo.Obstacle{
			{Vertices: []hipo.Point{{X: 35, Y: 40}, {X: 55, Y: 40}, {X: 55, Y: 55}, {X: 35, Y: 55}}},
			{Vertices: []hipo.Point{{X: 75, Y: 75}, {X: 92, Y: 75}, {X: 92, Y: 88}, {X: 75, Y: 88}}},
			{Vertices: []hipo.Point{{X: 15, Y: 55}, {X: 28, Y: 60}, {X: 24, Y: 72}, {X: 12, Y: 68}}},
		},
	}
	// The ten sensor strategies of Section 7.
	specs := []struct{ x, y, theta float64 }{
		{20, 15, 200}, {47, 20, 350}, {113, 65, 20}, {20, 85, 140}, {13, 95, 40},
		{7, 115, 190}, {27, 110, 310}, {47, 100, 150}, {50, 118, 160}, {60, 93, 270},
	}
	for i, s := range specs {
		typ := 0
		if i >= 5 {
			typ = 1
		}
		sc.Devices = append(sc.Devices, hipo.Device{
			Pos: hipo.Point{X: s.x, Y: s.y}, Orient: deg(s.theta), Type: typ,
		})
	}
	return sc
}
