// Warehouse: power shelf-mounted inventory sensors between racking aisles,
// under a deployment budget — chargers are carted from the loading dock and
// every meter of travel, radian of alignment, and watt of transmit power
// costs money (Section 8.2 of the paper). Sweeps the budget to show the
// utility/cost trade-off.
package main

import (
	"fmt"
	"log"
	"math"

	"hipo"
)

func main() {
	scenario := buildWarehouse()

	unconstrained, err := scenario.Solve()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cardinality-capped: %d chargers, utility %.3f\n\n",
		len(unconstrained.Chargers), unconstrained.Utility)
	fmt.Println("under a budget the per-type caps are replaced by spend (Section 8.2),")
	fmt.Println("so a big budget may buy more chargers than the caps would allow:")

	dock := hipo.Point{X: 0, Y: 15}
	fmt.Println("budget sweep (cost = 1/m travel + 0.5/rad alignment + 2/W power):")
	for _, budget := range []float64{20, 40, 80, 160, 320} {
		p, err := scenario.SolveBudgeted(hipo.DeploymentBudget{
			Depot:     dock,
			PerMeter:  1,
			PerRadian: 0.5,
			PerWatt:   2,
			TypePower: []float64{1, 3}, // watts per charger type
			Budget:    budget,
		})
		if err != nil {
			log.Fatal(err)
		}
		m, err := scenario.Evaluate(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  budget %6.0f: %2d chargers, utility %.3f (%.0f%% of the capped run)\n",
			budget, len(p.Chargers), m.Utility, 100*m.Utility/unconstrained.Utility)
	}
}

// buildWarehouse lays out a 50 m × 30 m floor with four racking rows and
// twenty shelf sensors facing the aisles.
func buildWarehouse() *hipo.Scenario {
	sc := &hipo.Scenario{
		Min: hipo.Point{X: 0, Y: 0},
		Max: hipo.Point{X: 50, Y: 30},
		ChargerTypes: []hipo.ChargerSpec{
			// Pole-mounted 1 W units for aisle ends.
			{Name: "pole-1W", Alpha: math.Pi / 2, DMin: 2, DMax: 7, Count: 6},
			// High-power 3 W beam for long aisles.
			{Name: "beam-3W", Alpha: math.Pi / 4, DMin: 4, DMax: 12, Count: 3},
		},
		DeviceTypes: []hipo.DeviceSpec{
			{Name: "shelf-sensor", Alpha: 2 * math.Pi / 3, PTh: 0.05},
		},
		Power: [][]hipo.PowerParams{
			{{A: 110, B: 44}},
			{{A: 200, B: 60}},
		},
	}
	// Four racking rows, 2 m deep, spanning most of the floor.
	for _, y := range []float64{5, 11, 17, 23} {
		sc.Obstacles = append(sc.Obstacles, hipo.Obstacle{
			Vertices: []hipo.Point{{X: 8, Y: y}, {X: 44, Y: y}, {X: 44, Y: y + 2}, {X: 8, Y: y + 2}},
		})
	}
	// Shelf sensors on rack faces, facing into the aisles (alternating
	// north/south faces).
	deg := func(d float64) float64 { return d * math.Pi / 180 }
	for i, y := range []float64{4.8, 7.2, 10.8, 13.2, 16.8, 19.2, 22.8, 25.2} {
		facing := 270.0 // mounted on a north face, looking south
		if i%2 == 1 {
			facing = 90 // south face, looking north
		}
		for _, x := range []float64{12, 12 + 9, 12 + 18, 12 + 27} {
			// Slight stagger per row so sensors don't align perfectly.
			sc.Devices = append(sc.Devices, hipo.Device{
				Pos:    hipo.Point{X: x + float64(i%3), Y: y},
				Orient: deg(facing),
				Type:   0,
			})
		}
	}
	return sc
}
