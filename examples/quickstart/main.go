// Quickstart: place two kinds of directional chargers to power four sensors
// around an obstacle, then inspect the per-device outcome.
package main

import (
	"fmt"
	"log"
	"math"

	"hipo"
)

func main() {
	scenario := &hipo.Scenario{
		// A 40 m × 40 m hall.
		Min: hipo.Point{X: 0, Y: 0},
		Max: hipo.Point{X: 40, Y: 40},
		// Two charger models: a narrow long-range beam and a wide
		// short-range one. Each charges only inside its sector ring
		// [DMin, DMax].
		ChargerTypes: []hipo.ChargerSpec{
			{Name: "narrow-beam", Alpha: math.Pi / 3, DMin: 3, DMax: 8, Count: 2},
			{Name: "wide-beam", Alpha: math.Pi / 2, DMin: 2, DMax: 6, Count: 2},
		},
		// One device build: 180° receiving aperture, saturating at 50 mW.
		DeviceTypes: []hipo.DeviceSpec{
			{Name: "sensor", Alpha: math.Pi, PTh: 0.05},
		},
		// Charging power P = A/((d+B)²) per (charger type, device type).
		Power: [][]hipo.PowerParams{
			{{A: 100, B: 40}},
			{{A: 120, B: 48}},
		},
		// Four sensors with fixed positions and facing directions.
		Devices: []hipo.Device{
			{Pos: hipo.Point{X: 10, Y: 10}, Orient: 0, Type: 0},
			{Pos: hipo.Point{X: 14, Y: 12}, Orient: math.Pi, Type: 0},
			{Pos: hipo.Point{X: 28, Y: 28}, Orient: math.Pi / 2, Type: 0},
			{Pos: hipo.Point{X: 30, Y: 24}, Orient: math.Pi, Type: 0},
		},
		// A pillar that blocks wireless power and placement.
		Obstacles: []hipo.Obstacle{
			{Vertices: []hipo.Point{{X: 18, Y: 16}, {X: 22, Y: 16}, {X: 22, Y: 20}, {X: 18, Y: 20}}},
		},
	}

	placement, err := scenario.Solve()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("placed %d chargers, total utility %.3f (guaranteed ≥ %.2f of optimal)\n",
		len(placement.Chargers), placement.Utility, hipo.ApproximationRatio())
	for _, c := range placement.Chargers {
		fmt.Printf("  %-12s at (%5.2f, %5.2f) facing %6.1f°\n",
			scenario.ChargerTypes[c.Type].Name, c.Pos.X, c.Pos.Y, c.Orient*180/math.Pi)
	}

	metrics, err := scenario.Evaluate(placement)
	if err != nil {
		log.Fatal(err)
	}
	for j, u := range metrics.DeviceUtilities {
		fmt.Printf("device %d: utility %.3f (%.2f mW received)\n",
			j, u, metrics.DevicePowers[j]*1000)
	}
}
