package hipo

import (
	"context"

	"hipo/internal/core"
	"hipo/internal/deploycost"
	"hipo/internal/fairness"
	"hipo/internal/hipotrace"
	"hipo/internal/power"
	"hipo/internal/redeploy"
)

// Option tunes the solver.
type Option func(*options)

type options struct {
	eps        float64
	variant    core.GreedyVariant
	workers    int
	ctx        context.Context
	bruteForce bool
	tracer     *Tracer
}

func buildOptions(opts []Option) options {
	o := options{eps: 0.15}
	for _, f := range opts {
		f(&o)
	}
	return o
}

func (o options) core() core.Options {
	return core.Options{
		Eps: o.eps, Variant: o.variant, Workers: o.workers, Ctx: o.ctx,
		BruteForceVisibility: o.bruteForce,
		Tracer:               o.tracer.internal(),
	}
}

// WithEps sets the approximation parameter ε ∈ (0, 1/2) of the 1/2 − ε
// guarantee (default 0.15). Smaller ε means finer power approximation, more
// candidate strategies, and longer runtimes.
func WithEps(eps float64) Option { return func(o *options) { o.eps = eps } }

// WithPerTypeGreedy selects the paper's Algorithm 3 (partitions processed
// in charger-type order) instead of the default lazy global greedy. Both
// carry the 1/2 − ε guarantee.
func WithPerTypeGreedy() Option {
	return func(o *options) { o.variant = core.GreedyPerType }
}

// WithWorkers bounds the goroutines used during candidate extraction and
// selection (0, the default, uses GOMAXPROCS).
func WithWorkers(n int) Option { return func(o *options) { o.workers = n } }

// WithContext attaches a context so long solves can be canceled between
// pipeline stages; the solve returns the context's error once observed.
func WithContext(ctx context.Context) Option {
	return func(o *options) { o.ctx = ctx }
}

// WithBruteForceVisibility disables the spatial visibility index and
// answers every line-of-sight / obstacle-containment query by exhaustive
// obstacle scan. Placements are identical with or without the index — the
// option exists as the differential reference for testing and as the
// baseline arm of cmd/hipobench. Setting the HIPO_BRUTE_FORCE_VISIBILITY
// environment variable (any non-empty value) has the same effect globally.
func WithBruteForceVisibility() Option {
	return func(o *options) { o.bruteForce = true }
}

// WithContinuousGreedy selects the continuous greedy of the paper's
// reference [39], which improves the guarantee from 1/2 − ε to 1 − 1/e − ε
// at a substantially higher runtime (the paper considers it impractical;
// it is exposed for experimentation on small scenarios).
func WithContinuousGreedy() Option {
	return func(o *options) { o.variant = core.GreedyContinuous }
}

// Tracer collects the per-stage timing and counter breakdown of a solve:
// spans for the discretize/pdcs/greedy pipeline stages, counters such as
// line-of-sight queries and greedy gain evaluations, and runtime/pprof
// goroutine labels (hipo_stage, hipo_detail) so CPU profiles attribute
// samples to pipeline stages. Create one with NewTracer, pass it via
// WithTracer, and read the result from Placement.Trace or Breakdown.
//
// Tracing is observational only: placements are bit-for-bit identical with
// and without a tracer, and the disabled path adds no allocations to the
// solver's hot loops. A Tracer is safe for concurrent use by the pipeline's
// worker goroutines but should not be reused across solves — breakdowns
// would mix their spans.
type Tracer struct {
	t *hipotrace.Tracer
}

// NewTracer returns an empty tracer ready to pass to WithTracer.
func NewTracer() *Tracer { return &Tracer{t: hipotrace.New()} }

// internal unwraps the tracer for core.Options; nil-safe.
func (tr *Tracer) internal() *hipotrace.Tracer {
	if tr == nil {
		return nil
	}
	return tr.t
}

// TraceBreakdown is the JSON-ready per-stage summary of a traced solve:
// total wall time, individual stage spans in start order, per-stage duration
// totals, and the non-zero pipeline counters. Its String method renders an
// aligned table (what cmd/hipo -trace prints).
type TraceBreakdown = hipotrace.Breakdown

// Breakdown summarizes everything the tracer collected so far. Returns nil
// on a nil Tracer.
func (tr *Tracer) Breakdown() *TraceBreakdown { return tr.internal().Breakdown() }

// WithTracer attaches a tracer to the solve. The solve fills it with stage
// spans and counters and embeds the final breakdown in Placement.Trace.
func WithTracer(tr *Tracer) Option { return func(o *options) { o.tracer = tr } }

// trace returns the breakdown to embed in a Placement, or nil when the
// solve ran untraced (keeping the JSON byte-identical to pre-trace output).
func (o options) trace() *TraceBreakdown {
	if o.tracer == nil {
		return nil
	}
	return o.tracer.Breakdown()
}

// Solve places the scenario's chargers to maximize total charging utility
// using the full HIPO pipeline (area discretization → PDCS extraction →
// greedy submodular maximization), achieving a 1/2 − ε approximation.
func (s *Scenario) Solve(opts ...Option) (*Placement, error) {
	sc, err := s.internalScenario()
	if err != nil {
		return nil, err
	}
	o := buildOptions(opts)
	sol, err := core.Solve(sc, o.core())
	if err != nil {
		return nil, err
	}
	return &Placement{
		Chargers:        strategiesToPlaced(sol.Placed),
		Utility:         sol.Utility,
		CandidateCounts: sol.Candidates,
		Trace:           o.trace(),
	}, nil
}

// Metrics reports the per-device outcome of a placement.
type Metrics struct {
	// Utility is the total charging utility (mean of DeviceUtilities).
	Utility float64 `json:"utility"`
	// DeviceUtilities[j] is device j's utility in [0, 1].
	DeviceUtilities []float64 `json:"device_utilities"`
	// DevicePowers[j] is device j's received power.
	DevicePowers []float64 `json:"device_powers"`
	// MinUtility is the worst device's utility (the max-min objective).
	MinUtility float64 `json:"min_utility"`
}

// Evaluate computes the exact charging metrics of an arbitrary placement on
// this scenario — use it to score hand-crafted or third-party placements.
func (s *Scenario) Evaluate(p *Placement) (*Metrics, error) {
	sc, err := s.internalScenario()
	if err != nil {
		return nil, err
	}
	placed := placedToStrategies(p.Chargers)
	m := &Metrics{
		Utility:         power.TotalUtility(sc, placed),
		DeviceUtilities: power.DeviceUtilities(sc, placed),
		DevicePowers:    power.DevicePowers(sc, placed),
	}
	m.MinUtility = 1
	if len(m.DeviceUtilities) == 0 {
		m.MinUtility = 0
	}
	for _, u := range m.DeviceUtilities {
		if u < m.MinUtility {
			m.MinUtility = u
		}
	}
	return m, nil
}

// RedeployPlan describes how to migrate chargers from an old placement to a
// new one.
type RedeployPlan struct {
	// Moves pairs each old charger with its new strategy.
	Moves []RedeployMove `json:"moves"`
	// TotalCost and MaxCost summarize the switching overhead.
	TotalCost float64 `json:"total_cost"`
	MaxCost   float64 `json:"max_cost"`
}

// RedeployMove is one charger's transition. Kind is empty for an ordinary
// move; "install" marks a charger that exists only in the new placement
// (From mirrors To), "decommission" one that exists only in the old
// placement (To mirrors From) — both appear when a mutation changed how
// many chargers of a type are deployed.
type RedeployMove struct {
	From PlacedCharger `json:"from"`
	To   PlacedCharger `json:"to"`
	Cost float64       `json:"cost"`
	Kind string        `json:"kind,omitempty"`
}

// RedeployCost weighs movement and rotation in the switching overhead.
// PerInstall and PerDecommission are the flat costs charged when the old
// and new placements deploy different charger counts of a type (zero by
// default: count changes are planned but not priced).
type RedeployCost struct {
	PerMeter        float64 `json:"per_meter"`
	PerRadian       float64 `json:"per_radian"`
	PerInstall      float64 `json:"per_install,omitempty"`
	PerDecommission float64 `json:"per_decommission,omitempty"`
}

func (s *Scenario) redeploy(old, new_ *Placement, cost RedeployCost, minmax bool) (*RedeployPlan, error) {
	sc, err := s.internalScenario()
	if err != nil {
		return nil, err
	}
	cm := redeploy.CostModel{
		PerMeter:        cost.PerMeter,
		PerRadian:       cost.PerRadian,
		PerInstall:      cost.PerInstall,
		PerDecommission: cost.PerDecommission,
	}
	var plan *redeploy.Plan
	if minmax {
		plan, err = redeploy.MinMax(placedToStrategies(old.Chargers),
			placedToStrategies(new_.Chargers), len(sc.ChargerTypes), cm)
	} else {
		plan, err = redeploy.MinTotal(placedToStrategies(old.Chargers),
			placedToStrategies(new_.Chargers), len(sc.ChargerTypes), cm)
	}
	if err != nil {
		return nil, err
	}
	out := &RedeployPlan{TotalCost: plan.Total, MaxCost: plan.Max}
	for _, mv := range plan.Moves {
		out.Moves = append(out.Moves, RedeployMove{
			From: PlacedCharger{Pos: fromVec(mv.From.Pos), Orient: mv.From.Orient, Type: mv.From.Type},
			To:   PlacedCharger{Pos: fromVec(mv.To.Pos), Orient: mv.To.Orient, Type: mv.To.Type},
			Cost: mv.Cost,
			Kind: string(mv.Kind),
		})
	}
	return out, nil
}

// RedeployMinTotal plans the migration from old to new minimizing the total
// switching overhead (per charger type, a minimum-cost matching — Section
// 8.1.1 of the paper). When old and new place different charger counts of a
// type, the surplus is planned explicitly as install or decommission moves
// priced by RedeployCost.PerInstall / PerDecommission.
func (s *Scenario) RedeployMinTotal(old, new_ *Placement, cost RedeployCost) (*RedeployPlan, error) {
	return s.redeploy(old, new_, cost, false)
}

// RedeployMinMax plans the migration minimizing the maximum per-charger
// overhead, then the total overhead among such plans (Section 8.1.2).
func (s *Scenario) RedeployMinMax(old, new_ *Placement, cost RedeployCost) (*RedeployPlan, error) {
	return s.redeploy(old, new_, cost, true)
}

// DeploymentBudget configures budget-constrained placement (Section 8.2):
// cost per charger = PerMeter·dist(Depot, position) + PerRadian·|rotation| +
// PerWatt·TypePower[type], capped by Budget.
type DeploymentBudget struct {
	Depot     Point     `json:"depot"`
	PerMeter  float64   `json:"per_meter"`
	PerRadian float64   `json:"per_radian"`
	PerWatt   float64   `json:"per_watt"`
	TypePower []float64 `json:"type_power,omitempty"`
	Budget    float64   `json:"budget"`
}

// SolveBudgeted places chargers maximizing utility subject to the
// deployment-cost budget, via the cost-benefit greedy over the PDCS
// candidate set. Per-type cardinalities are advisory under the budget.
func (s *Scenario) SolveBudgeted(b DeploymentBudget, opts ...Option) (*Placement, error) {
	sc, err := s.internalScenario()
	if err != nil {
		return nil, err
	}
	o := buildOptions(opts)
	cm := deploycost.LinearCostModel(b.Depot.vec(), b.PerMeter, b.PerRadian, b.PerWatt, b.TypePower)
	res, err := deploycost.SolveBudgeted(sc, cm, b.Budget, o.core())
	if err != nil {
		return nil, err
	}
	return &Placement{
		Chargers: strategiesToPlaced(res.Placed),
		Utility:  power.TotalUtility(sc, res.Placed),
		Trace:    o.trace(),
	}, nil
}

// SolveMaxMin maximizes the minimum device utility (max-min fairness,
// Section 8.3) by simulated annealing over the PDCS candidate set, seeded
// with the greedy HIPO solution. iterations ≤ 0 uses a sensible default.
func (s *Scenario) SolveMaxMin(iterations int, seed int64, opts ...Option) (*Placement, error) {
	sc, err := s.internalScenario()
	if err != nil {
		return nil, err
	}
	o := buildOptions(opts)
	sa := fairness.DefaultSAOptions()
	if iterations > 0 {
		sa.Iterations = iterations
	}
	sa.Seed = seed
	placed, _, err := fairness.MaxMinSA(sc, o.core(), sa)
	if err != nil {
		return nil, err
	}
	return &Placement{
		Chargers: strategiesToPlaced(placed),
		Utility:  power.TotalUtility(sc, placed),
		Trace:    o.trace(),
	}, nil
}

// SolveProportionalFair maximizes Σ log(1 + U_j), the proportional-fairness
// objective of Section 8.3 — still monotone submodular, so the greedy keeps
// its 1/2 − ε guarantee.
func (s *Scenario) SolveProportionalFair(opts ...Option) (*Placement, error) {
	sc, err := s.internalScenario()
	if err != nil {
		return nil, err
	}
	o := buildOptions(opts)
	sol, err := fairness.ProportionalFair(sc, o.core())
	if err != nil {
		return nil, err
	}
	return &Placement{
		Chargers:        strategiesToPlaced(sol.Placed),
		Utility:         sol.Utility,
		CandidateCounts: sol.Candidates,
		Trace:           o.trace(),
	}, nil
}

// ApproximationRatio returns the theoretical guarantee 1/2 − ε for the
// given options.
func ApproximationRatio(opts ...Option) float64 {
	o := buildOptions(opts)
	return core.Options{Eps: o.eps}.TheoreticalRatio()
}
