package hipo

import (
	"fmt"
	"io"

	"hipo/internal/field"
)

// PowerField is a sampled map of the charging power a virtual
// omnidirectional probe would harvest across the deployment region under a
// placement. Cells inside obstacles hold NaN.
type PowerField struct {
	// Values[iy][ix] is the probe power at the cell center; row 0 is the
	// bottom of the region.
	Values [][]float64 `json:"values"`
	// NX, NY are the grid dimensions.
	NX int `json:"nx"`
	NY int `json:"ny"`
	// Peak is the maximum sampled power.
	Peak float64 `json:"peak"`
	// CoverageAtPth is the fraction of non-obstacle cells receiving at
	// least the probe device type's power threshold.
	CoverageAtPth float64 `json:"coverage_at_pth"`

	scenario *Scenario
	grid     *field.Grid
}

// Field samples the probe-power field of a placement on a res × res grid.
// probeType selects which device type's power constants and threshold
// calibrate the probe. Useful for spotting dead zones a placement leaves.
func (s *Scenario) Field(p *Placement, probeType, res int) (*PowerField, error) {
	sc, err := s.internalScenario()
	if err != nil {
		return nil, err
	}
	if probeType < 0 || probeType >= len(sc.DeviceTypes) {
		return nil, fmt.Errorf("hipo: probe type %d out of range", probeType)
	}
	if res < 2 {
		return nil, fmt.Errorf("hipo: field resolution %d too small", res)
	}
	grid := field.Sample(sc, placedToStrategies(p.Chargers), probeType, res, res, 0)
	return &PowerField{
		Values:        grid.Values,
		NX:            grid.NX,
		NY:            grid.NY,
		Peak:          grid.MaxValue(),
		CoverageAtPth: grid.CoverageFraction(sc.DeviceTypes[probeType].PTh),
		scenario:      s,
		grid:          grid,
	}, nil
}

// WriteHeatmap renders the field as an SVG heatmap.
func (f *PowerField) WriteHeatmap(w io.Writer) error {
	sc, err := f.scenario.internalScenario()
	if err != nil {
		return err
	}
	return field.RenderHeatmap(w, sc, f.grid)
}
