module hipo

go 1.22
