package hipo

import (
	"fmt"

	"hipo/internal/cells"
	"hipo/internal/power"
	"hipo/internal/radial"
)

// FeasibleArea returns the exact area (in squared scenario units) of the
// region where a charger of the given type could be placed so as to charge
// device deviceIdx with non-zero power: the device's receiving sector ring
// clipped by the charger's distance ring and by obstacle occlusion — the
// analytic form of the paper's feasible geometric areas (Section 4.1.2)
// aggregated over distance bands. A small area warns that a device is
// nearly unreachable before any solve.
func (s *Scenario) FeasibleArea(chargerType, deviceIdx int) (float64, error) {
	sc, err := s.internalScenario()
	if err != nil {
		return 0, err
	}
	if chargerType < 0 || chargerType >= len(sc.ChargerTypes) {
		return 0, fmt.Errorf("hipo: charger type %d out of range", chargerType)
	}
	if deviceIdx < 0 || deviceIdx >= len(sc.Devices) {
		return 0, fmt.Errorf("hipo: device index %d out of range", deviceIdx)
	}
	return radial.FeasibleAreaForDevice(sc, chargerType, deviceIdx), nil
}

// FeasibleCellCount returns the number of feasible geometric areas
// (Section 4.1.2 cells) of one device under one charger type for the given
// approximation parameter ε — the quantity Lemma 4.4 bounds. Diagnostic
// companion to FeasibleArea.
func (s *Scenario) FeasibleCellCount(chargerType, deviceIdx int, eps float64) (int, error) {
	sc, err := s.internalScenario()
	if err != nil {
		return 0, err
	}
	if chargerType < 0 || chargerType >= len(sc.ChargerTypes) {
		return 0, fmt.Errorf("hipo: charger type %d out of range", chargerType)
	}
	if deviceIdx < 0 || deviceIdx >= len(sc.Devices) {
		return 0, fmt.Errorf("hipo: device index %d out of range", deviceIdx)
	}
	if eps <= 0 || eps >= 0.5 {
		return 0, fmt.Errorf("hipo: eps %v out of range (0, 0.5)", eps)
	}
	return len(cells.DeviceCells(sc, chargerType, deviceIdx, power.Eps1ForEps(eps))), nil
}

// UnreachableDevices returns the indices of devices that no charger type
// can reach at all (zero feasible area for every type) — these devices cap
// the achievable utility regardless of budget.
func (s *Scenario) UnreachableDevices() ([]int, error) {
	sc, err := s.internalScenario()
	if err != nil {
		return nil, err
	}
	var out []int
	for j := range sc.Devices {
		reachable := false
		for q := range sc.ChargerTypes {
			if radial.FeasibleAreaForDevice(sc, q, j) > 1e-9 {
				reachable = true
				break
			}
		}
		if !reachable {
			out = append(out, j)
		}
	}
	return out, nil
}
