package hipo

import (
	"fmt"

	"hipo/internal/incremental"
	"hipo/internal/model"
)

// Mutation op identifiers, as carried in Mutation.Op (and in the JSON the
// server's mutation endpoint accepts).
const (
	MutationAddDevice    = "add_device"
	MutationRemoveDevice = "remove_device"
	MutationMoveDevice   = "move_device"
	MutationAddObstacle  = "add_obstacle"
)

// Mutation is one scenario edit for incremental solving. Construct with the
// Mutate* helpers; the zero value is invalid. The struct is plain data with
// a stable JSON schema so mutation streams can be stored and replayed.
type Mutation struct {
	// Op is one of the Mutation* constants.
	Op string `json:"op"`
	// Index selects the device for remove_device and move_device.
	Index int `json:"index,omitempty"`
	// Device is the device to append (add_device) or the new position and
	// orientation (move_device; its Type field is ignored when moving).
	Device *Device `json:"device,omitempty"`
	// Obstacle is the polygon to append (add_obstacle).
	Obstacle *Obstacle `json:"obstacle,omitempty"`
}

// MutateAddDevice appends device d to the scenario.
func MutateAddDevice(d Device) Mutation {
	return Mutation{Op: MutationAddDevice, Device: &d}
}

// MutateRemoveDevice removes the device at index; devices after it shift
// down by one.
func MutateRemoveDevice(index int) Mutation {
	return Mutation{Op: MutationRemoveDevice, Index: index}
}

// MutateMoveDevice repositions the device at index (its type is unchanged).
func MutateMoveDevice(index int, pos Point, orient float64) Mutation {
	return Mutation{Op: MutationMoveDevice, Index: index, Device: &Device{Pos: pos, Orient: orient}}
}

// MutateAddObstacle appends obstacle o to the scenario.
func MutateAddObstacle(o Obstacle) Mutation {
	return Mutation{Op: MutationAddObstacle, Obstacle: &o}
}

// internal converts the public mutation into the session representation.
func (m Mutation) internal() (incremental.Mutation, error) {
	switch m.Op {
	case MutationAddDevice:
		if m.Device == nil {
			return incremental.Mutation{}, fmt.Errorf("hipo: %s mutation needs a device", m.Op)
		}
		return incremental.AddDevice(model.Device{
			Pos: m.Device.Pos.vec(), Orient: m.Device.Orient, Type: m.Device.Type,
		}), nil
	case MutationRemoveDevice:
		return incremental.RemoveDevice(m.Index), nil
	case MutationMoveDevice:
		if m.Device == nil {
			return incremental.Mutation{}, fmt.Errorf("hipo: %s mutation needs a device", m.Op)
		}
		return incremental.MoveDevice(m.Index, m.Device.Pos.vec(), m.Device.Orient), nil
	case MutationAddObstacle:
		if m.Obstacle == nil {
			return incremental.Mutation{}, fmt.Errorf("hipo: %s mutation needs an obstacle", m.Op)
		}
		var ob model.Obstacle
		for _, v := range m.Obstacle.Vertices {
			ob.Shape.Vertices = append(ob.Shape.Vertices, v.vec())
		}
		return incremental.AddObstacle(ob), nil
	default:
		return incremental.Mutation{}, fmt.Errorf("hipo: unknown mutation op %q", m.Op)
	}
}

// IncrementalStats counts the work an incremental session did and skipped,
// cumulative since NewIncremental.
type IncrementalStats struct {
	// Mutations applied, pipeline solves run, and solves served straight
	// from the previous solution (no mutations in between).
	Mutations int `json:"mutations"`
	Solves    int `json:"solves"`
	FastPath  int `json:"fast_path"`
	// Discretization tasks and Algorithm 1 position sweeps recomputed
	// versus served from the session caches.
	TasksRecomputed int `json:"tasks_recomputed"`
	TasksReused     int `json:"tasks_reused"`
	SweepsComputed  int `json:"sweeps_computed"`
	SweepsReused    int `json:"sweeps_reused"`
	// Round-0 CELF gains replayed from the warm-start cache versus
	// recomputed.
	GainsWarm int `json:"gains_warm"`
	GainsCold int `json:"gains_cold"`
}

// Incremental is a stateful solving session: apply scenario mutations and
// re-solve, reusing everything outside each mutation's geometric blast
// radius. Placements are bit-for-bit identical to a cold
// (*Scenario).Solve of the mutated scenario with the same options — the
// session only changes how much work the solve repeats. Not safe for
// concurrent use.
type Incremental struct {
	o    options
	sess *incremental.Session
	prev []PlacedCharger // placement before the latest pipeline solve
	cur  []PlacedCharger // latest placement
}

// NewIncremental starts an incremental session on a copy of the scenario.
// Only the default lazy greedy variant is supported (it is the one with a
// warm-startable selection state); WithPerTypeGreedy or WithContinuousGreedy
// options are rejected.
func (s *Scenario) NewIncremental(opts ...Option) (*Incremental, error) {
	sc, err := s.internalScenario()
	if err != nil {
		return nil, err
	}
	o := buildOptions(opts)
	sess, err := incremental.NewSession(sc, o.core())
	if err != nil {
		return nil, err
	}
	return &Incremental{o: o, sess: sess}, nil
}

// Apply applies the mutations in order, validating each against the current
// scenario. On error, mutations earlier in the batch remain applied and the
// session stays usable.
func (inc *Incremental) Apply(muts ...Mutation) error {
	for _, m := range muts {
		im, err := m.internal()
		if err != nil {
			return err
		}
		if err := inc.sess.Apply(im); err != nil {
			return err
		}
	}
	return nil
}

// Solve solves the current scenario, reusing session caches. Consecutive
// calls without intervening Apply return the previous placement without
// re-running the pipeline.
func (inc *Incremental) Solve() (*Placement, error) {
	fast := inc.sess.Stats().FastPath
	sol, err := inc.sess.Solve()
	if err != nil {
		return nil, err
	}
	p := &Placement{
		Chargers:        strategiesToPlaced(sol.Placed),
		Utility:         sol.Utility,
		CandidateCounts: sol.Candidates,
		Trace:           inc.o.trace(),
	}
	if inc.sess.Stats().FastPath == fast {
		// A real pipeline run: the previous placement becomes the redeploy
		// baseline.
		inc.prev, inc.cur = inc.cur, p.Chargers
	}
	return p, nil
}

// Redeploy plans the minimum-total-switching-cost transition from the
// placement before the latest solve to the latest one (Section 8.1 applied
// to consecutive incremental placements). It needs at least two pipeline
// solves; unequal per-type counts are handled by install/decommission moves.
func (inc *Incremental) Redeploy(cost RedeployCost) (*RedeployPlan, error) {
	if inc.prev == nil || inc.cur == nil {
		return nil, fmt.Errorf("hipo: redeploy needs two solved placements; run Solve before and after a mutation")
	}
	return inc.Scenario().redeploy(
		&Placement{Chargers: inc.prev}, &Placement{Chargers: inc.cur}, cost, false)
}

// Scenario returns a copy of the session's current (mutated) scenario.
func (inc *Incremental) Scenario() *Scenario {
	return publicScenario(inc.sess.Scenario())
}

// Stats reports the session's cumulative cache counters.
func (inc *Incremental) Stats() IncrementalStats {
	st := inc.sess.Stats()
	return IncrementalStats{
		Mutations: st.Mutations, Solves: st.Solves, FastPath: st.FastPath,
		TasksRecomputed: st.TasksRecomputed, TasksReused: st.TasksReused,
		SweepsComputed: st.SweepsComputed, SweepsReused: st.SweepsReused,
		GainsWarm: st.GainsWarm, GainsCold: st.GainsCold,
	}
}

// SolveIncremental applies the mutations to a copy of the scenario and
// solves the result through the incremental machinery. It is the one-shot
// form of NewIncremental + Apply + Solve; use a session to amortize caches
// across several mutation/solve rounds.
func (s *Scenario) SolveIncremental(muts []Mutation, opts ...Option) (*Placement, error) {
	inc, err := s.NewIncremental(opts...)
	if err != nil {
		return nil, err
	}
	if err := inc.Apply(muts...); err != nil {
		return nil, err
	}
	return inc.Solve()
}

// publicScenario converts an internal scenario back to the public schema.
func publicScenario(sc *model.Scenario) *Scenario {
	out := &Scenario{
		Min: fromVec(sc.Region.Min),
		Max: fromVec(sc.Region.Max),
	}
	for _, c := range sc.ChargerTypes {
		out.ChargerTypes = append(out.ChargerTypes, ChargerSpec{
			Name: c.Name, Alpha: c.Alpha, DMin: c.DMin, DMax: c.DMax, Count: c.Count,
		})
	}
	for _, d := range sc.DeviceTypes {
		out.DeviceTypes = append(out.DeviceTypes, DeviceSpec{
			Name: d.Name, Alpha: d.Alpha, PTh: d.PTh,
		})
	}
	for _, row := range sc.Power {
		var r []PowerParams
		for _, p := range row {
			r = append(r, PowerParams{A: p.A, B: p.B})
		}
		out.Power = append(out.Power, r)
	}
	for _, d := range sc.Devices {
		out.Devices = append(out.Devices, Device{Pos: fromVec(d.Pos), Orient: d.Orient, Type: d.Type})
	}
	for _, o := range sc.Obstacles {
		var vs []Point
		for _, v := range o.Shape.Vertices {
			vs = append(vs, fromVec(v))
		}
		out.Obstacles = append(out.Obstacles, Obstacle{Vertices: vs})
	}
	return out
}
