package hipo

import (
	"math"
	"sync"
	"testing"
)

// Metamorphic properties of Evaluate: charging physics depends only on
// relative geometry, so rigid motions of the whole scene (devices,
// obstacles, placement, region) must leave every metric unchanged, device
// reordering must permute — not change — the per-device utilities, and
// inserting an obstacle can only remove line-of-sight power, never add it.

const metamorphicTol = 1e-9

// metaPlacement solves the demo scenario once and shares the placement
// across the metamorphic tests.
var metaPlacement = sync.OnceValue(func() *Placement {
	p, err := demoScenario().Solve(WithEps(0.3))
	if err != nil {
		panic(err)
	}
	return p
})

func translateScenario(s *Scenario, dx, dy float64) *Scenario {
	out := *s
	out.Min = Point{s.Min.X + dx, s.Min.Y + dy}
	out.Max = Point{s.Max.X + dx, s.Max.Y + dy}
	out.Devices = append([]Device(nil), s.Devices...)
	for i := range out.Devices {
		out.Devices[i].Pos.X += dx
		out.Devices[i].Pos.Y += dy
	}
	out.Obstacles = make([]Obstacle, len(s.Obstacles))
	for i, o := range s.Obstacles {
		vs := append([]Point(nil), o.Vertices...)
		for j := range vs {
			vs[j].X += dx
			vs[j].Y += dy
		}
		out.Obstacles[i] = Obstacle{Vertices: vs}
	}
	return &out
}

func translatePlacement(p *Placement, dx, dy float64) *Placement {
	out := *p
	out.Chargers = append([]PlacedCharger(nil), p.Chargers...)
	for i := range out.Chargers {
		out.Chargers[i].Pos.X += dx
		out.Chargers[i].Pos.Y += dy
	}
	return &out
}

// rot90 rotates p by 90° counterclockwise about c.
func rot90(p, c Point) Point {
	return Point{c.X - (p.Y - c.Y), c.Y + (p.X - c.X)}
}

func rotateScenario(s *Scenario) *Scenario {
	c := Point{(s.Min.X + s.Max.X) / 2, (s.Min.Y + s.Max.Y) / 2}
	w, h := s.Max.X-s.Min.X, s.Max.Y-s.Min.Y
	out := *s
	// A 90°-rotated axis-aligned rectangle swaps its extents.
	out.Min = Point{c.X - h/2, c.Y - w/2}
	out.Max = Point{c.X + h/2, c.Y + w/2}
	out.Devices = append([]Device(nil), s.Devices...)
	for i := range out.Devices {
		out.Devices[i].Pos = rot90(out.Devices[i].Pos, c)
		out.Devices[i].Orient += math.Pi / 2
	}
	out.Obstacles = make([]Obstacle, len(s.Obstacles))
	for i, o := range s.Obstacles {
		vs := append([]Point(nil), o.Vertices...)
		for j := range vs {
			vs[j] = rot90(vs[j], c)
		}
		out.Obstacles[i] = Obstacle{Vertices: vs}
	}
	return &out
}

func rotatePlacement(p *Placement, s *Scenario) *Placement {
	c := Point{(s.Min.X + s.Max.X) / 2, (s.Min.Y + s.Max.Y) / 2}
	out := *p
	out.Chargers = append([]PlacedCharger(nil), p.Chargers...)
	for i := range out.Chargers {
		out.Chargers[i].Pos = rot90(out.Chargers[i].Pos, c)
		out.Chargers[i].Orient += math.Pi / 2
	}
	return &out
}

func metricsMatch(t *testing.T, label string, a, b *Metrics) {
	t.Helper()
	if math.Abs(a.Utility-b.Utility) > metamorphicTol {
		t.Fatalf("%s: utility %v vs %v", label, a.Utility, b.Utility)
	}
	if math.Abs(a.MinUtility-b.MinUtility) > metamorphicTol {
		t.Fatalf("%s: min utility %v vs %v", label, a.MinUtility, b.MinUtility)
	}
	if len(a.DeviceUtilities) != len(b.DeviceUtilities) {
		t.Fatalf("%s: device count %d vs %d", label, len(a.DeviceUtilities), len(b.DeviceUtilities))
	}
	for j := range a.DeviceUtilities {
		if math.Abs(a.DeviceUtilities[j]-b.DeviceUtilities[j]) > metamorphicTol {
			t.Fatalf("%s: device %d utility %v vs %v", label, j, a.DeviceUtilities[j], b.DeviceUtilities[j])
		}
		if math.Abs(a.DevicePowers[j]-b.DevicePowers[j]) > metamorphicTol {
			t.Fatalf("%s: device %d power %v vs %v", label, j, a.DevicePowers[j], b.DevicePowers[j])
		}
	}
}

func TestEvaluateTranslationInvariance(t *testing.T) {
	s := demoScenario()
	p := metaPlacement()
	base, err := s.Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	if base.Utility <= 0 {
		t.Fatal("degenerate base placement: zero utility proves nothing")
	}
	for _, d := range []struct{ dx, dy float64 }{{17, 0}, {0, -230}, {3.25, 101.5}} {
		ts := translateScenario(s, d.dx, d.dy)
		if err := ts.Validate(); err != nil {
			t.Fatalf("translated scenario invalid: %v", err)
		}
		tm, err := ts.Evaluate(translatePlacement(p, d.dx, d.dy))
		if err != nil {
			t.Fatal(err)
		}
		metricsMatch(t, "translate", base, tm)
	}
}

func TestEvaluateRotationInvariance(t *testing.T) {
	s := demoScenario()
	p := metaPlacement()
	base, err := s.Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	// Apply the quarter turn four times; each intermediate scene must score
	// identically, and the fourth returns to the start.
	rs, rp := s, p
	for k := 1; k <= 4; k++ {
		rp = rotatePlacement(rp, rs)
		rs = rotateScenario(rs)
		if err := rs.Validate(); err != nil {
			t.Fatalf("rotation %d: invalid scenario: %v", k, err)
		}
		rm, err := rs.Evaluate(rp)
		if err != nil {
			t.Fatal(err)
		}
		metricsMatch(t, "rotate", base, rm)
	}
}

// TestEvaluateDevicePermutationEquivariance: reordering devices permutes
// the per-device metrics and preserves the mean. The scenario hash is
// order-sensitive by contract, so the two scenes cache under different
// keys — both keyed sets must carry the same utilities up to the
// permutation.
func TestEvaluateDevicePermutationEquivariance(t *testing.T) {
	s := demoScenario()
	p := metaPlacement()
	perm := []int{2, 0, 3, 1} // permuted[i] = original[perm[i]]

	ps := *s
	ps.Devices = make([]Device, len(s.Devices))
	for i, from := range perm {
		ps.Devices[i] = s.Devices[from]
	}

	baseHash, err := s.ScenarioHash()
	if err != nil {
		t.Fatal(err)
	}
	permHash, err := ps.ScenarioHash()
	if err != nil {
		t.Fatal(err)
	}
	if baseHash == permHash {
		t.Fatal("ScenarioHash must be device-order sensitive")
	}

	byHash := map[string]*Metrics{}
	for _, sc := range []*Scenario{s, &ps} {
		h, err := sc.ScenarioHash()
		if err != nil {
			t.Fatal(err)
		}
		m, err := sc.Evaluate(p)
		if err != nil {
			t.Fatal(err)
		}
		byHash[h] = m
	}
	base, permuted := byHash[baseHash], byHash[permHash]
	if math.Abs(base.Utility-permuted.Utility) > metamorphicTol {
		t.Fatalf("mean utility changed under permutation: %v vs %v", base.Utility, permuted.Utility)
	}
	for i, from := range perm {
		if math.Abs(permuted.DeviceUtilities[i]-base.DeviceUtilities[from]) > metamorphicTol {
			t.Fatalf("device %d (originally %d): utility %v vs %v",
				i, from, permuted.DeviceUtilities[i], base.DeviceUtilities[from])
		}
	}
}

// TestObstacleInsertionMonotonic: adding an obstacle to a fixed placement
// can only block power. No device's utility may increase, and an obstacle
// far outside every charging sector must change nothing.
func TestObstacleInsertionMonotonic(t *testing.T) {
	s := demoScenario()
	p := metaPlacement()
	base, err := s.Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}

	walls := []Obstacle{
		// A wall right of the lower-left device cluster.
		{Vertices: []Point{{12, 8}, {12.5, 8}, {12.5, 14}, {12, 14}}},
		// A wall through the upper-right cluster.
		{Vertices: []Point{{26, 22}, {31, 22}, {31, 22.5}, {26, 22.5}}},
		// A box far from everything (top-left corner).
		{Vertices: []Point{{1, 36}, {3, 36}, {3, 38}, {1, 38}}},
	}
	for wi, wall := range walls {
		ws := *s
		ws.Obstacles = append(append([]Obstacle(nil), s.Obstacles...), wall)
		if err := ws.Validate(); err != nil {
			t.Fatalf("wall %d: invalid scenario: %v", wi, err)
		}
		wm, err := ws.Evaluate(p)
		if err != nil {
			t.Fatal(err)
		}
		for j := range base.DeviceUtilities {
			if wm.DeviceUtilities[j] > base.DeviceUtilities[j]+1e-12 {
				t.Fatalf("wall %d: device %d utility rose from %v to %v",
					wi, j, base.DeviceUtilities[j], wm.DeviceUtilities[j])
			}
			if wm.DevicePowers[j] > base.DevicePowers[j]+1e-12 {
				t.Fatalf("wall %d: device %d power rose from %v to %v",
					wi, j, base.DevicePowers[j], wm.DevicePowers[j])
			}
		}
		if wi == 2 && math.Abs(wm.Utility-base.Utility) > 1e-12 {
			t.Fatalf("distant obstacle changed utility: %v vs %v", base.Utility, wm.Utility)
		}
	}
}
