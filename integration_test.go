package hipo

// Integration tests: cross-module flows on randomized scenarios, including
// the paper's "obstacles of arbitrary shapes" claim exercised with random
// star-shaped polygons, and end-to-end optimality/feasibility invariants.

import (
	"math"
	"math/rand"
	"testing"

	"hipo/internal/core"
	"hipo/internal/expt"
	"hipo/internal/geom"
	"hipo/internal/model"
	"hipo/internal/pdcs"
	"hipo/internal/power"
	"hipo/internal/submodular"
)

// randomObstacleScenario builds a scenario with nObs random star-shaped
// obstacles and nDev devices placed feasibly around them.
func randomObstacleScenario(rng *rand.Rand, nObs, nDev int) *model.Scenario {
	sc := &model.Scenario{
		Region: model.Region{Min: geom.V(0, 0), Max: geom.V(40, 40)},
		ChargerTypes: []model.ChargerType{
			{Name: "c1", Alpha: math.Pi / 3, DMin: 3, DMax: 9, Count: 2},
			{Name: "c2", Alpha: math.Pi / 2, DMin: 2, DMax: 6, Count: 3},
		},
		DeviceTypes: []model.DeviceType{
			{Name: "d1", Alpha: math.Pi, PTh: 0.05},
			{Name: "d2", Alpha: 2 * math.Pi / 3, PTh: 0.05},
		},
		Power: [][]model.PowerParams{
			{{A: 100, B: 40}, {A: 130, B: 52}},
			{{A: 110, B: 44}, {A: 140, B: 56}},
		},
	}
	for len(sc.Obstacles) < nObs {
		c := geom.V(5+rng.Float64()*30, 5+rng.Float64()*30)
		poly := geom.RandomSimplePolygon(rng, c, 1, 3, 3+rng.Intn(7))
		sc.Obstacles = append(sc.Obstacles, model.Obstacle{Shape: poly})
	}
	for len(sc.Devices) < nDev {
		p := geom.V(rng.Float64()*40, rng.Float64()*40)
		if !sc.FeasiblePosition(p) {
			continue
		}
		sc.Devices = append(sc.Devices, model.Device{
			Pos: p, Orient: rng.Float64() * 2 * math.Pi, Type: rng.Intn(2),
		})
	}
	return sc
}

// TestSolveWithArbitraryObstacles fuzzes the full pipeline against random
// obstacle fields: results must be feasible, consistent, and within bounds.
func TestSolveWithArbitraryObstacles(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 12; trial++ {
		nObs := rng.Intn(5)
		sc := randomObstacleScenario(rng, nObs, 8+rng.Intn(8))
		if err := sc.Validate(); err != nil {
			t.Fatalf("trial %d: generated scenario invalid: %v", trial, err)
		}
		sol, err := core.Solve(sc, core.DefaultOptions())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sol.Utility < 0 || sol.Utility > 1+1e-9 {
			t.Fatalf("trial %d: utility %v", trial, sol.Utility)
		}
		counts := map[int]int{}
		for _, s := range sol.Placed {
			counts[s.Type]++
			if !sc.FeasiblePosition(s.Pos) {
				t.Fatalf("trial %d: infeasible placement %v", trial, s.Pos)
			}
		}
		for q, ct := range sc.ChargerTypes {
			if counts[q] > ct.Count {
				t.Fatalf("trial %d: type %d over budget", trial, q)
			}
		}
		if got := power.TotalUtility(sc, sol.Placed); math.Abs(got-sol.Utility) > 1e-12 {
			t.Fatalf("trial %d: utility mismatch", trial)
		}
		// Lemma 4.2/4.3: approximated objective never exceeds exact utility.
		if sol.Utility < sol.ApproxValue-1e-9 {
			t.Fatalf("trial %d: exact %v < approx %v", trial, sol.Utility, sol.ApproxValue)
		}
	}
}

// TestNoPowerThroughObstacles verifies the line-of-sight gate end to end:
// take solved placements and check that every (charger, device) pair with
// positive power has unobstructed line of sight.
func TestNoPowerThroughObstacles(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for trial := 0; trial < 8; trial++ {
		sc := randomObstacleScenario(rng, 3, 10)
		sol, err := core.Solve(sc, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range sol.Placed {
			for j := range sc.Devices {
				if power.Exact(sc, s, j) > 0 && !sc.LineOfSight(s.Pos, sc.Devices[j].Pos) {
					t.Fatalf("trial %d: power delivered through an obstacle", trial)
				}
			}
		}
	}
}

// TestGreedyNearOptimalEndToEnd compares the full pipeline against brute
// force over its own candidate set on tiny instances: the greedy must reach
// at least half the candidate-set optimum (Theorem 4.2's combinatorial
// part).
func TestGreedyNearOptimalEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	for trial := 0; trial < 5; trial++ {
		sc := randomObstacleScenario(rng, 1, 5)
		sc.ChargerTypes[0].Count = 1
		sc.ChargerTypes[1].Count = 1
		opt := core.DefaultOptions()
		cands := core.ExtractCandidates(sc, opt)
		inst, _ := core.BuildInstance(sc, cands, opt)
		res := submodular.GreedyLazy(inst)
		best := bruteForceSelect(inst)
		if res.Value < best/2-1e-9 {
			t.Fatalf("trial %d: greedy %v below half of candidate optimum %v",
				trial, res.Value, best)
		}
	}
}

func bruteForceSelect(inst *submodular.Instance) float64 {
	// With budget 1 per part, optimum = max over pairs (one per part).
	var part [2][]int
	for e, el := range inst.Elements {
		part[el.Part] = append(part[el.Part], e)
	}
	best := 0.0
	try := func(sel []int) {
		if v := submodular.Evaluate(inst, sel); v > best {
			best = v
		}
	}
	for _, a := range part[0] {
		try([]int{a})
		for _, b := range part[1] {
			try([]int{a, b})
		}
	}
	for _, b := range part[1] {
		try([]int{b})
	}
	return best
}

// TestHIPOBeatsBaselinesOnAverage is the headline claim in miniature: over
// a few topologies, HIPO's mean utility must exceed every baseline's.
func TestHIPOBeatsBaselinesOnAverage(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rc := expt.RunConfig{Runs: 2, Seed: 11, Eps: 0.15}
	fig := expt.RunNsSweep(rc)
	hipoSeries := fig.FindSeries("HIPO")
	for _, s := range fig.Series {
		if s.Label == "HIPO" {
			continue
		}
		if expt.Mean(hipoSeries.Y) <= expt.Mean(s.Y) {
			t.Errorf("HIPO mean %v not above %s mean %v",
				expt.Mean(hipoSeries.Y), s.Label, expt.Mean(s.Y))
		}
	}
}

// TestDistributedEqualsSerialQuality cross-checks Section 5 end to end on a
// random obstacle scenario: greedy value from distributed extraction must
// match the serial pipeline's within the dedup tolerance.
func TestDistributedEqualsSerialQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	sc := randomObstacleScenario(rng, 2, 8)
	opt := core.DefaultOptions()
	serial, err := core.Solve(sc, opt)
	if err != nil {
		t.Fatal(err)
	}
	cfg := pdcs.Config{Eps1: power.Eps1ForEps(0.15)}
	cands, _ := pdcs.ExtractDistributed(sc, cfg, 4, nil)
	dist, err := core.SelectFromCandidates(sc, cands, opt)
	if err != nil {
		t.Fatal(err)
	}
	// The candidate sets are equal up to dedup ordering, so values match
	// closely; allow a small relative slack for tie-breaking.
	if dist.ApproxValue < serial.ApproxValue*0.95-1e-9 {
		t.Errorf("distributed %v well below serial %v", dist.ApproxValue, serial.ApproxValue)
	}
}

// TestOmnidirectionalSpecialCase exercises the NP-hardness reduction's
// special case (Theorem 3.1): α_s = α_o = 2π, d_min ≈ 0 — disk coverage.
func TestOmnidirectionalSpecialCase(t *testing.T) {
	sc := &model.Scenario{
		Region: model.Region{Min: geom.V(0, 0), Max: geom.V(40, 40)},
		ChargerTypes: []model.ChargerType{
			{Name: "disk", Alpha: 2 * math.Pi, DMin: 0, DMax: 8, Count: 2},
		},
		DeviceTypes: []model.DeviceType{
			{Name: "omni", Alpha: 2 * math.Pi, PTh: 0.01},
		},
		Power: [][]model.PowerParams{{{A: 100, B: 40}}},
		Devices: []model.Device{
			{Pos: geom.V(10, 10), Orient: 0, Type: 0},
			{Pos: geom.V(12, 11), Orient: 3, Type: 0},
			{Pos: geom.V(30, 30), Orient: 1, Type: 0},
			{Pos: geom.V(31, 28), Orient: 5, Type: 0},
		},
	}
	sol, err := core.Solve(sc, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Two disk chargers suffice to cover both clusters fully.
	if sol.Utility < 0.999 {
		t.Errorf("disk-cover utility = %v, want ≈ 1", sol.Utility)
	}
}

// TestDegenerateConfigurations drives the solver through geometric corner
// cases: coincident devices, devices on obstacle boundaries, overlapping
// obstacles, zero d_min, and a device hugging the region corner.
func TestDegenerateConfigurations(t *testing.T) {
	base := func() *model.Scenario {
		return &model.Scenario{
			Region: model.Region{Min: geom.V(0, 0), Max: geom.V(30, 30)},
			ChargerTypes: []model.ChargerType{
				{Name: "c", Alpha: math.Pi / 2, DMin: 0, DMax: 7, Count: 3},
			},
			DeviceTypes: []model.DeviceType{
				{Name: "d", Alpha: math.Pi, PTh: 0.05},
			},
			Power: [][]model.PowerParams{{{A: 100, B: 40}}},
		}
	}
	cases := []struct {
		name  string
		build func() *model.Scenario
	}{
		{"coincident devices", func() *model.Scenario {
			sc := base()
			sc.Devices = []model.Device{
				{Pos: geom.V(15, 15), Orient: 0, Type: 0},
				{Pos: geom.V(15, 15), Orient: math.Pi, Type: 0},
				{Pos: geom.V(15, 15), Orient: math.Pi / 2, Type: 0},
			}
			return sc
		}},
		{"device on obstacle boundary", func() *model.Scenario {
			sc := base()
			sc.Obstacles = []model.Obstacle{{Shape: geom.Rect(10, 10, 14, 14)}}
			sc.Devices = []model.Device{
				{Pos: geom.V(10, 12), Orient: math.Pi, Type: 0}, // on the west wall
				{Pos: geom.V(20, 20), Orient: 0, Type: 0},
			}
			return sc
		}},
		{"overlapping obstacles", func() *model.Scenario {
			sc := base()
			sc.Obstacles = []model.Obstacle{
				{Shape: geom.Rect(10, 10, 16, 16)},
				{Shape: geom.Rect(13, 13, 19, 19)},
			}
			sc.Devices = []model.Device{
				{Pos: geom.V(5, 5), Orient: math.Pi / 4, Type: 0},
				{Pos: geom.V(25, 25), Orient: 5 * math.Pi / 4, Type: 0},
			}
			return sc
		}},
		{"device in region corner", func() *model.Scenario {
			sc := base()
			sc.Devices = []model.Device{
				{Pos: geom.V(0, 0), Orient: math.Pi / 4, Type: 0},
				{Pos: geom.V(30, 30), Orient: 5 * math.Pi / 4, Type: 0},
			}
			return sc
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sc := c.build()
			if err := sc.Validate(); err != nil {
				t.Fatalf("scenario invalid: %v", err)
			}
			sol, err := core.Solve(sc, core.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			if sol.Utility < 0 || sol.Utility > 1+1e-9 {
				t.Fatalf("utility %v", sol.Utility)
			}
			for _, s := range sol.Placed {
				if !sc.FeasiblePosition(s.Pos) {
					t.Fatalf("infeasible placement %v", s.Pos)
				}
			}
			// Degenerate layouts must still let the solver reach someone.
			if sol.Utility == 0 && c.name != "device on obstacle boundary" {
				t.Errorf("zero utility on %q", c.name)
			}
		})
	}
}

// TestTinyAndHugeScales drives extreme coordinate magnitudes through the
// epsilon discipline.
func TestTinyAndHugeScales(t *testing.T) {
	for _, scale := range []float64{1e-2, 1e3} {
		sc := &model.Scenario{
			Region: model.Region{Min: geom.V(0, 0), Max: geom.V(40*scale, 40*scale)},
			ChargerTypes: []model.ChargerType{
				{Name: "c", Alpha: math.Pi / 2, DMin: 2 * scale, DMax: 8 * scale, Count: 2},
			},
			DeviceTypes: []model.DeviceType{{Name: "d", Alpha: math.Pi, PTh: 0.05}},
			Power:       [][]model.PowerParams{{{A: 100 * scale * scale, B: 40 * scale}}},
			Devices: []model.Device{
				{Pos: geom.V(10*scale, 10*scale), Orient: 0, Type: 0},
				{Pos: geom.V(14*scale, 10*scale), Orient: math.Pi, Type: 0},
			},
		}
		sol, err := core.Solve(sc, core.DefaultOptions())
		if err != nil {
			t.Fatalf("scale %v: %v", scale, err)
		}
		if sol.Utility <= 0 {
			t.Errorf("scale %v: zero utility", scale)
		}
	}
}

// TestDominanceFilterPreservesGreedyValue checks the ablation claim from
// DESIGN.md quantitatively: filtering ~99% of candidates moves the greedy
// value only marginally (the filter is lossless for the optimum; the greedy
// path may differ slightly through ties).
func TestDominanceFilterPreservesGreedyValue(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	sc := expt.BuildScenario(expt.Params{Seed: 21})
	filtered, err := core.Solve(sc, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	raw := core.DefaultOptions()
	raw.SkipDominanceFilter = true
	unfiltered, err := core.Solve(sc, raw)
	if err != nil {
		t.Fatal(err)
	}
	if filtered.Utility < 0.93*unfiltered.Utility {
		t.Errorf("dominance filter cost too much utility: %v vs %v",
			filtered.Utility, unfiltered.Utility)
	}
	nf, nu := 0, 0
	for _, c := range filtered.Candidates {
		nf += c
	}
	for _, c := range unfiltered.Candidates {
		nu += c
	}
	if nf >= nu/10 {
		t.Errorf("filter barely reduced candidates: %d vs %d", nf, nu)
	}
}
